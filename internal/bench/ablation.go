package bench

import (
	"time"

	"ecldb/internal/ecl"
	"ecldb/internal/loadprofile"
	"ecldb/internal/sim"
	"ecldb/internal/workload"
)

// Ablation experiments for the design decisions called out in DESIGN.md.

// AblationElasticityResult compares the elastic hierarchical message layer
// against the original architecture's static worker-partition binding when
// the ECL shuts workers down (design decision 5; the paper's Section 3
// motivation).
type AblationElasticityResult struct {
	// ElasticCompleted / StaticCompleted are the completed-query
	// fractions under the ECL at low load.
	ElasticCompleted float64
	StaticCompleted  float64
	// ElasticViolations / StaticViolations are the latency-limit
	// violation fractions.
	ElasticViolations float64
	StaticViolations  float64
}

// AblationElasticity runs the ECL at 30 % load with and without the
// elasticity extension. With static binding, partitions mapped to sleeping
// hardware threads become unreachable whenever the ECL picks a
// configuration with fewer workers — the problem the hierarchical message
// layer exists to solve.
func AblationElasticity() (AblationElasticityResult, error) {
	var out AblationElasticityResult
	capacity, err := MeasureCapacity(workload.NewKV(false), 31)
	if err != nil {
		return out, err
	}
	type outcome struct{ done, viol float64 }
	run := func(static bool) Job[outcome] {
		return func() (outcome, error) {
			res, err := sim.Run(sim.Options{
				Workload:      workload.NewKV(false),
				Load:          loadprofile.Constant{Qps: capacity * 0.3, Len: 45 * time.Second},
				Governor:      sim.GovernorECL,
				Prewarm:       true,
				StaticBinding: static,
				Seed:          31,
			})
			if err != nil {
				return outcome{}, err
			}
			if res.Submitted == 0 {
				return outcome{}, nil
			}
			return outcome{
				done: float64(res.Completed) / float64(res.Submitted),
				viol: res.ViolationFrac,
			}, nil
		}
	}
	runs, err := Sweep([]Job[outcome]{run(false), run(true)})
	if err != nil {
		return out, err
	}
	out.ElasticCompleted, out.ElasticViolations = runs[0].done, runs[0].viol
	out.StaticCompleted, out.StaticViolations = runs[1].done, runs[1].viol
	return out, nil
}

// Render formats the elasticity ablation.
func (r AblationElasticityResult) Render() string {
	t := Table{
		Title:  "Ablation: elastic message layer vs static worker-partition binding (ECL, 30% load)",
		Header: []string{"architecture", "completed", "violations"},
		Rows: [][]string{
			{"elastic (paper)", pct(r.ElasticCompleted), pct(r.ElasticViolations)},
			{"static binding", pct(r.StaticCompleted), pct(r.StaticViolations)},
		},
		Note: "static binding strands partitions on sleeping threads once the ECL shrinks the worker set",
	}
	return t.Render()
}

// AblationNUMAResult compares random query admission against NUMA-aware
// admission (queries enter at their first target partition's home
// socket).
type AblationNUMAResult struct {
	RandomComm   int64
	NUMAComm     int64
	RandomJ      float64
	NUMAJ        float64
	RandomAvgLat time.Duration
	NUMAAvgLat   time.Duration
}

// AblationNUMA quantifies the cost of cross-socket message transfers for
// a point-access workload at moderate load.
func AblationNUMA() (AblationNUMAResult, error) {
	var out AblationNUMAResult
	capacity, err := MeasureCapacity(workload.NewKV(true), 33)
	if err != nil {
		return out, err
	}
	type outcome struct {
		comm int64
		j    float64
		lat  time.Duration
	}
	run := func(numa bool) Job[outcome] {
		return func() (outcome, error) {
			s, err := sim.New(sim.Options{
				Workload:    workload.NewKV(true),
				Load:        loadprofile.Constant{Qps: capacity * 0.4, Len: 30 * time.Second},
				Governor:    sim.GovernorECL,
				Prewarm:     true,
				NUMARouting: numa,
				Seed:        33,
			})
			if err != nil {
				return outcome{}, err
			}
			res, err := s.Run()
			if err != nil {
				return outcome{}, err
			}
			return outcome{comm: s.Engine().CommMessages(), j: res.EnergyJ.Joules(), lat: res.AvgLatency}, nil
		}
	}
	runs, err := Sweep([]Job[outcome]{run(false), run(true)})
	if err != nil {
		return out, err
	}
	out.RandomComm, out.RandomJ, out.RandomAvgLat = runs[0].comm, runs[0].j, runs[0].lat
	out.NUMAComm, out.NUMAJ, out.NUMAAvgLat = runs[1].comm, runs[1].j, runs[1].lat
	return out, nil
}

// Render formats the NUMA ablation.
func (r AblationNUMAResult) Render() string {
	t := Table{
		Title:  "Ablation: NUMA-aware query admission (kv indexed, 40% load)",
		Header: []string{"routing", "inter-socket transfers", "energy J", "avg latency"},
		Rows: [][]string{
			{"random socket", f0(float64(r.RandomComm)), f0(r.RandomJ), r.RandomAvgLat.String()},
			{"NUMA-aware", f0(float64(r.NUMAComm)), f0(r.NUMAJ), r.NUMAAvgLat.String()},
		},
		Note: "point queries admitted at their home socket never cross the interconnect",
	}
	return t.Render()
}

// AblationRTIResult compares the ECL with and without the race-to-idle
// controller at low load (design decision 4; the paper's Section 4.3 RTI
// savings).
type AblationRTIResult struct {
	BaselineJ         float64
	WithRTIJ          float64
	WithoutRTIJ       float64
	WithRTISavings    float64
	WithoutRTISavings float64
}

// AblationRTI measures how much of the low-load savings come from the RTI
// controller: without it, the loop can only run the smallest profile
// configuration continuously, paying the first-core/uncore activation
// cost the whole time.
func AblationRTI() (AblationRTIResult, error) {
	var out AblationRTIResult
	capacity, err := MeasureCapacity(workload.NewKV(false), 32)
	if err != nil {
		return out, err
	}
	load := loadprofile.Constant{Qps: capacity * 0.15, Len: 45 * time.Second}
	run := func(gov sim.Governor, disableRTI bool) Job[float64] {
		return func() (float64, error) {
			opts := sim.Options{
				Workload: workload.NewKV(false),
				Load:     load,
				Governor: gov,
				Prewarm:  gov == sim.GovernorECL,
				Seed:     32,
			}
			if gov == sim.GovernorECL {
				opts.ECL = ecl.DefaultOptions()
				opts.ECL.DisableRTI = disableRTI
			}
			res, err := sim.Run(opts)
			if err != nil {
				return 0, err
			}
			return res.EnergyJ.Joules(), nil
		}
	}
	energies, err := Sweep([]Job[float64]{
		run(sim.GovernorBaseline, false),
		run(sim.GovernorECL, false),
		run(sim.GovernorECL, true),
	})
	if err != nil {
		return out, err
	}
	out.BaselineJ, out.WithRTIJ, out.WithoutRTIJ = energies[0], energies[1], energies[2]
	out.WithRTISavings = 1 - out.WithRTIJ/out.BaselineJ
	out.WithoutRTISavings = 1 - out.WithoutRTIJ/out.BaselineJ
	return out, nil
}

// Render formats the RTI ablation.
func (r AblationRTIResult) Render() string {
	t := Table{
		Title:  "Ablation: race-to-idle controller at 15% load",
		Header: []string{"policy", "energy J", "savings vs baseline"},
		Rows: [][]string{
			{"baseline", f0(r.BaselineJ), "-"},
			{"ECL with RTI", f0(r.WithRTIJ), pct(r.WithRTISavings)},
			{"ECL without RTI", f0(r.WithoutRTIJ), pct(r.WithoutRTISavings)},
		},
		Note: "RTI compensates the first-core/uncore activation cost at low load (paper Section 4.3: ~40%)",
	}
	return t.Render()
}

// AblationRTISyncResult compares aligned socket-level tick phases against
// staggered ones (design decision 4; the paper's Section 5.1 "idle times
// … synchronized across the processors to reach the deepest sleep
// state").
type AblationRTISyncResult struct {
	// SyncedDeepSleepSec / DesyncedDeepSleepSec are the machine-wide
	// deepest-sleep (all uncores halted) residencies.
	SyncedDeepSleepSec   float64
	DesyncedDeepSleepSec float64
	// SyncedJ / DesyncedJ are the runs' RAPL energies.
	SyncedJ   float64
	DesyncedJ float64
}

// AblationRTISync runs the ECL at 10 % load with the socket loops ticking
// in phase (the paper's design) and deliberately staggered. Aligned
// phases make the sockets' race-to-idle grids coincide, so their idle
// windows overlap and the machine reaches the deepest sleep state;
// staggering destroys the overlap — whenever one socket idles, the other
// is running, and the uncore-halt condition (all sockets idle) rarely
// holds.
func AblationRTISync() (AblationRTISyncResult, error) {
	var out AblationRTISyncResult
	capacity, err := MeasureCapacity(workload.NewKV(false), 34)
	if err != nil {
		return out, err
	}
	type outcome struct{ deepSec, energyJ float64 }
	run := func(desync bool) Job[outcome] {
		return func() (outcome, error) {
			opts := sim.Options{
				Workload: workload.NewKV(false),
				Load:     loadprofile.Constant{Qps: capacity * 0.1, Len: 30 * time.Second},
				Governor: sim.GovernorECL,
				Prewarm:  true,
				Seed:     34,
			}
			opts.ECL = ecl.DefaultOptions()
			opts.ECL.DesyncRTI = desync
			s, err := sim.New(opts)
			if err != nil {
				return outcome{}, err
			}
			res, err := s.Run()
			if err != nil {
				return outcome{}, err
			}
			_, _, deep := s.Machine().Residency(0)
			return outcome{deepSec: deep, energyJ: res.EnergyJ.Joules()}, nil
		}
	}
	runs, err := Sweep([]Job[outcome]{run(false), run(true)})
	if err != nil {
		return out, err
	}
	out.SyncedDeepSleepSec, out.SyncedJ = runs[0].deepSec, runs[0].energyJ
	out.DesyncedDeepSleepSec, out.DesyncedJ = runs[1].deepSec, runs[1].energyJ
	return out, nil
}

// Render formats the RTI synchronization ablation.
func (r AblationRTISyncResult) Render() string {
	t := Table{
		Title:  "Ablation: race-to-idle phase synchronization across sockets (10% load)",
		Header: []string{"tick phases", "deepest-sleep s", "energy J"},
		Rows: [][]string{
			{"aligned (paper)", f1(r.SyncedDeepSleepSec), f0(r.SyncedJ)},
			{"staggered", f1(r.DesyncedDeepSleepSec), f0(r.DesyncedJ)},
		},
		Note: "the uncore halts only when all sockets idle simultaneously; aligned grids overlap the idle windows",
	}
	return t.Render()
}

// AblationQuantumResult measures the sensitivity of an end-to-end
// experiment to the simulation quantum (design decision 1: virtual-time
// discrete stepping).
type AblationQuantumResult struct {
	Quanta     []time.Duration
	EnergyJ    []float64
	Violations []float64
}

// AblationQuantum runs the same ECL experiment at half, default, and
// double quantum. The experiments' conclusions must not depend on the
// discretization: energies agree within a few percent.
func AblationQuantum() (AblationQuantumResult, error) {
	out := AblationQuantumResult{
		Quanta: []time.Duration{500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond},
	}
	capacity, err := MeasureCapacity(workload.NewKV(false), 35)
	if err != nil {
		return out, err
	}
	type outcome struct{ energyJ, violations float64 }
	jobs := make([]Job[outcome], len(out.Quanta))
	for i, q := range out.Quanta {
		q := q
		jobs[i] = func() (outcome, error) {
			res, err := sim.Run(sim.Options{
				Workload: workload.NewKV(false),
				Load:     loadprofile.Constant{Qps: capacity * 0.4, Len: 30 * time.Second},
				Governor: sim.GovernorECL,
				Prewarm:  true,
				Quantum:  q,
				Seed:     35,
			})
			if err != nil {
				return outcome{}, err
			}
			return outcome{energyJ: res.EnergyJ.Joules(), violations: res.ViolationFrac}, nil
		}
	}
	runs, err := Sweep(jobs)
	if err != nil {
		return out, err
	}
	for _, r := range runs {
		out.EnergyJ = append(out.EnergyJ, r.energyJ)
		out.Violations = append(out.Violations, r.violations)
	}
	return out, nil
}

// Render formats the quantum-sensitivity ablation.
func (r AblationQuantumResult) Render() string {
	t := Table{
		Title:  "Ablation: simulation quantum sensitivity (ECL, kv non-indexed, 40% load)",
		Header: []string{"quantum", "energy J", "violations"},
		Note:   "conclusions are discretization-independent",
	}
	for i, q := range r.Quanta {
		t.Rows = append(t.Rows, []string{q.String(), f0(r.EnergyJ[i]), pct(r.Violations[i])})
	}
	return t.Render()
}
