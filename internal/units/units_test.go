package units

import (
	"math"
	"testing"
	"time"
)

// TestBitIdentity pins every helper to the exact float expression its
// call sites used before the types existed. These are equality checks on
// bits, not tolerances: the whole point of the package is that adopting
// it cannot perturb a single ULP.
func TestBitIdentity(t *testing.T) {
	// Variables, not constants: the Go compiler folds untyped-constant
	// arithmetic in arbitrary precision, which is exactly what runtime
	// float64 code does not do.
	w := 83.7219
	j := 1912.000331
	h := 2.31e9
	seg := 1700 * time.Microsecond

	if got, want := WattsOf(w).Over(seg).Joules(), w*seg.Seconds(); got != want {
		t.Errorf("Watt.Over: %v != %v", got, want)
	}
	if got, want := JoulesOf(j).PerSeconds(0.1).Watts(), j/0.1; got != want {
		t.Errorf("Joule.PerSeconds: %v != %v", got, want)
	}
	if got, want := HertzOf(h).Over(seg), h*seg.Seconds(); got != want {
		t.Errorf("Hertz.Over: %v != %v", got, want)
	}
	if got, want := WattsOf(w).Scale(1.25).Watts(), w*1.25; got != want {
		t.Errorf("Watt.Scale: %v != %v", got, want)
	}
	if got, want := JoulesOf(j).Div(JoulesOf(w)), j/w; got != want {
		t.Errorf("Joule.Div: %v != %v", got, want)
	}
	const quantum = 1.0 / (1 << 16)
	if got, want := JoulesOf(j).Quantize(JoulesOf(quantum)).Joules(), math.Floor(j/quantum)*quantum; got != want {
		t.Errorf("Joule.Quantize: %v != %v", got, want)
	}
	if got, want := JoulesOf(j).Min(JoulesOf(w)).Joules(), math.Min(j, w); got != want {
		t.Errorf("Joule.Min: %v != %v", got, want)
	}
	if got, want := HertzOf(-h).Abs().PerSecond(), math.Abs(-h); got != want {
		t.Errorf("Hertz.Abs: %v != %v", got, want)
	}
	if got, want := PerWatt(HertzOf(h), WattsOf(w)), h/w; got != want {
		t.Errorf("PerWatt: %v != %v", got, want)
	}
	// Virtual seconds must match time.Duration.Seconds, which is NOT
	// float64(d)/1e9 — it splits integer seconds from the remainder.
	odd := 7*time.Second + 123456789*time.Nanosecond
	if got, want := Virtual(odd).Seconds(), odd.Seconds(); got != want {
		t.Errorf("VirtualNanos.Seconds: %v != %v", got, want)
	}
	if got := Virtual(odd).Nanos(); got != int64(odd) {
		t.Errorf("VirtualNanos.Nanos: %v != %v", got, int64(odd))
	}
	if got := Virtual(odd).Duration(); got != odd {
		t.Errorf("VirtualNanos.Duration: %v != %v", got, odd)
	}
}

// TestUntypedConstantsCompose documents that untyped constants need no
// constructors: the defined types keep natural arithmetic.
func TestUntypedConstantsCompose(t *testing.T) {
	w := WattsOf(10)
	if w*1.5 != WattsOf(15) {
		t.Errorf("untyped constant scaling broke: %v", w*1.5)
	}
	if w <= 0 {
		t.Errorf("comparison against zero broke")
	}
	j := JoulesOf(8)
	if j/2 != JoulesOf(4) {
		t.Errorf("untyped constant division broke: %v", j/2)
	}
}
