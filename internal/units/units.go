// Package units defines the physical quantities the reproduction's
// control loops compute with — energy, power, rate, and virtual time — as
// distinct Go types. Watts and joules flowing through a control loop as
// bare float64 are the classic unit-confusion bug class; a defined type
// per quantity makes cross-unit mixing a compile error and gives the
// `unit` analyzer (internal/lint) an anchor: outside this package, core
// code must build values through the constructors and read them through
// the accessors, never via raw conversions.
//
// Bit-identity contract: a defined type over float64 compiles to exactly
// the float64 it wraps, and every helper in this package reproduces — op
// for op, in evaluation order — the float expression its call sites used
// before the types existed. Adopting these types cannot change a single
// bit of any simulation output; the determinism digests and the
// AllocsPerRun/benchmark figures prove it.
//
// Conversion rules (enforced by the `unit` analyzer in core packages):
//
//   - Construct with JoulesOf / WattsOf / HertzOf / Virtual, read with
//     Joules() / Watts() / PerSecond() / Duration() / Nanos() / Seconds().
//     Raw conversions like units.Watt(x) or float64(w) are findings.
//   - Same-unit multiplication (Watt*Watt, Joule*Joule, …) is meaningless
//     and flagged; scaling by a dimensionless factor uses Scale, ratios
//     use Div, and unit-changing arithmetic uses the named helpers
//     (Watt.Over, Joule.PerSeconds, …).
//   - Untyped constants still work naturally: w * 1.25, j / 2, and
//     comparisons against 0 need no ceremony.
package units

import (
	"math"
	"time"
)

// Joule is an amount of energy. The hardware model's RAPL counters, PSU
// accumulator, and turbo budgets carry it.
type Joule float64

// Watt is power: energy per second. Power-model outputs, caps, and
// profile measurements carry it.
type Watt float64

// Hertz is a per-second rate. The reproduction uses it for performance
// scores and demands (instructions/s) and for offered load (queries/s).
type Hertz float64

// VirtualNanos is a timestamp on the simulation's virtual clock, in
// nanoseconds since run start. Inside the core, scheduling keeps using
// time.Duration offsets (already a defined unit type); VirtualNanos marks
// the serialization boundary — exported event streams and spans — where
// "these nanoseconds are virtual, not wall time" must survive the type
// system leaving the process.
type VirtualNanos int64

// JoulesOf constructs an energy amount from a raw joule count.
func JoulesOf(j float64) Joule { return Joule(j) }

// WattsOf constructs a power value from a raw watt count.
func WattsOf(w float64) Watt { return Watt(w) }

// HertzOf constructs a rate from a raw per-second count.
func HertzOf(perSec float64) Hertz { return Hertz(perSec) }

// Virtual stamps a virtual-clock offset as a virtual timestamp.
func Virtual(d time.Duration) VirtualNanos { return VirtualNanos(d) }

// Joules reads the raw joule count.
func (j Joule) Joules() float64 { return float64(j) }

// Watts reads the raw watt count.
func (w Watt) Watts() float64 { return float64(w) }

// PerSecond reads the raw per-second count.
func (h Hertz) PerSecond() float64 { return float64(h) }

// Duration converts the timestamp back to a virtual-clock offset.
func (v VirtualNanos) Duration() time.Duration { return time.Duration(v) }

// Nanos reads the raw nanosecond count (the JSONL encoders use it).
func (v VirtualNanos) Nanos() int64 { return int64(v) }

// Seconds is the timestamp in seconds. It delegates to
// time.Duration.Seconds so the division decomposition (integer seconds
// plus fractional remainder) matches what untyped call sites computed.
func (v VirtualNanos) Seconds() float64 { return time.Duration(v).Seconds() }

// Scale multiplies energy by a dimensionless factor.
func (j Joule) Scale(f float64) Joule { return Joule(float64(j) * f) }

// Scale multiplies power by a dimensionless factor.
func (w Watt) Scale(f float64) Watt { return Watt(float64(w) * f) }

// Scale multiplies a rate by a dimensionless factor.
func (h Hertz) Scale(f float64) Hertz { return Hertz(float64(h) * f) }

// Div is the dimensionless ratio of two energies.
func (j Joule) Div(o Joule) float64 { return float64(j) / float64(o) }

// Div is the dimensionless ratio of two powers.
func (w Watt) Div(o Watt) float64 { return float64(w) / float64(o) }

// Div is the dimensionless ratio of two rates.
func (h Hertz) Div(o Hertz) float64 { return float64(h) / float64(o) }

// Min returns the smaller energy, with math.Min's NaN/signed-zero
// semantics (the turbo-budget clamp used math.Min directly).
func (j Joule) Min(o Joule) Joule { return Joule(math.Min(float64(j), float64(o))) }

// Min returns the smaller power, with math.Min's semantics.
func (w Watt) Min(o Watt) Watt { return Watt(math.Min(float64(w), float64(o))) }

// Abs is the magnitude of a rate difference (profile drift tests).
func (h Hertz) Abs() Hertz { return Hertz(math.Abs(float64(h))) }

// Over integrates constant power over a time span: w × span seconds,
// yielding energy. Multiplication order matches the integrators'
// original `powerW * seg.Seconds()` expression.
func (w Watt) Over(d time.Duration) Joule { return Joule(float64(w) * d.Seconds()) }

// PerSeconds divides energy by a window length in seconds, yielding the
// average power over the window.
func (j Joule) PerSeconds(sec float64) Watt { return Watt(float64(j) / sec) }

// Over integrates a rate over a time span, yielding a dimensionless
// count (queries, instructions): h × span seconds.
func (h Hertz) Over(d time.Duration) float64 { return float64(h) * d.Seconds() }

// Quantize floors energy to a whole number of quanta: the RAPL counter
// model exposes energy only in counter-resolution steps.
func (j Joule) Quantize(q Joule) Joule {
	return Joule(math.Floor(float64(j)/float64(q)) * float64(q))
}

// PerQuery divides a total energy over a query count, yielding the
// average joules per query. A zero count yields zero energy, so the
// attribution reports can divide by "queries completed so far" without
// guarding every call site.
func (j Joule) PerQuery(n uint64) Joule {
	if n == 0 {
		return 0
	}
	return Joule(float64(j) / float64(n))
}

// PerOp divides a total energy over an operation count, yielding the
// average joules per operation, with the same zero-count behavior as
// PerQuery. The two helpers are the typed spellings of the paper-style
// efficiency metrics (energy per transaction, energy per operator).
func (j Joule) PerOp(n uint64) Joule {
	if n == 0 {
		return 0
	}
	return Joule(float64(j) / float64(n))
}

// PerWatt is rate per power — the profile's efficiency metric
// (instructions per joule, since Hz/W = 1/s ÷ J/s).
func PerWatt(h Hertz, w Watt) float64 { return float64(h) / float64(w) }
