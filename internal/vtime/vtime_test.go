package vtime

import (
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestAdvanceMovesTime(t *testing.T) {
	c := NewClock()
	c.Advance(3 * time.Second)
	if got := c.Now(); got != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", got)
	}
	c.Advance(500 * time.Millisecond)
	if got := c.Now(); got != 3500*time.Millisecond {
		t.Fatalf("Now() = %v, want 3.5s", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestAfterFiresOnce(t *testing.T) {
	c := NewClock()
	fired := 0
	c.After(time.Second, func() { fired++ })
	c.Advance(999 * time.Millisecond)
	if fired != 0 {
		t.Fatalf("fired early: %d", fired)
	}
	c.Advance(time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	c.Advance(10 * time.Second)
	if fired != 1 {
		t.Fatalf("fired again: %d", fired)
	}
}

func TestAfterObservesDeadlineTime(t *testing.T) {
	c := NewClock()
	var at time.Duration
	c.After(time.Second, func() { at = c.Now() })
	c.Advance(5 * time.Second)
	if at != time.Second {
		t.Fatalf("task observed Now() = %v, want 1s", at)
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	c := NewClock()
	var times []time.Duration
	c.Every(time.Second, func() { times = append(times, c.Now()) })
	c.Advance(3500 * time.Millisecond)
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if len(times) != len(want) {
		t.Fatalf("fired %d times (%v), want %d", len(times), times, len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("firing %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestEveryAtPhaseOffset(t *testing.T) {
	c := NewClock()
	var times []time.Duration
	c.EveryAt(250*time.Millisecond, time.Second, func() { times = append(times, c.Now()) })
	c.Advance(2300 * time.Millisecond)
	want := []time.Duration{250 * time.Millisecond, 1250 * time.Millisecond, 2250 * time.Millisecond}
	if len(times) != len(want) {
		t.Fatalf("fired %d times (%v), want %d", len(times), times, len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("firing %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewClock().Every(0, func() {})
}

func TestCancelStopsFiring(t *testing.T) {
	c := NewClock()
	fired := 0
	task := c.Every(time.Second, func() { fired++ })
	c.Advance(2500 * time.Millisecond)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	task.Cancel()
	c.Advance(10 * time.Second)
	if fired != 2 {
		t.Fatalf("fired after cancel: %d", fired)
	}
}

func TestCancelFromWithinTask(t *testing.T) {
	c := NewClock()
	fired := 0
	var task Task
	task = c.Every(time.Second, func() {
		fired++
		if fired == 3 {
			task.Cancel()
		}
	})
	c.Advance(10 * time.Second)
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
}

func TestTaskSchedulingDuringAdvance(t *testing.T) {
	c := NewClock()
	var order []string
	c.After(time.Second, func() {
		order = append(order, "outer")
		c.After(time.Second, func() { order = append(order, "inner") })
	})
	c.Advance(5 * time.Second)
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v, want [outer inner]", order)
	}
}

func TestSameDeadlineFiresInScheduleOrder(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.After(time.Second, func() { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestPendingCountsNonCancelled(t *testing.T) {
	c := NewClock()
	a := c.After(time.Second, func() {})
	c.After(2*time.Second, func() {})
	if got := c.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	a.Cancel()
	if got := c.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}

func TestZeroDelayAfterFiresImmediatelyOnAdvance(t *testing.T) {
	c := NewClock()
	fired := false
	c.After(0, func() { fired = true })
	c.Advance(0)
	if !fired {
		t.Fatal("zero-delay task did not fire on Advance(0)")
	}
}
