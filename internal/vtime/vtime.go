// Package vtime provides a virtual clock and deterministic periodic task
// scheduling for the simulation stack.
//
// All components of the reproduction (hardware model, DBMS runtime,
// energy-control loop) are driven by a single virtual clock instead of the
// wall clock. This makes every experiment deterministic and lets a
// "two hour" load profile replay in milliseconds, mirroring how the paper
// replayed a 2 h Twitter load profile within 3 minutes.
package vtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a virtual clock. The zero value starts at instant 0.
// A Clock is advanced explicitly by the simulation driver; components read
// it through Now. Clock is not safe for concurrent use: the simulation is
// single-threaded by design (see DESIGN.md, decision 1).
type Clock struct {
	now   time.Duration
	tasks taskHeap
	seq   uint64
}

// NewClock returns a clock positioned at virtual instant 0.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time as an offset from instant 0.
func (c *Clock) Now() time.Duration {
	return c.now
}

// Advance moves the clock forward by d, firing any tasks whose deadline is
// reached, in deadline order. Tasks scheduled with the same deadline fire
// in scheduling order. A task may schedule further tasks; tasks scheduled
// during Advance with deadlines inside the advanced window also fire.
// Advance panics if d is negative.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vtime: negative advance %v", d))
	}
	target := c.now + d
	for len(c.tasks) > 0 && c.tasks[0].at <= target {
		t := heap.Pop(&c.tasks).(*task)
		if t.cancelled {
			continue
		}
		// Time jumps to the task deadline before the task runs, so that
		// the task observes a consistent Now.
		c.now = t.at
		if t.period > 0 && !t.cancelled {
			t.at += t.period
			heap.Push(&c.tasks, t)
		} else {
			t.done = true
		}
		t.fn()
	}
	c.now = target
}

// Task is a handle to a scheduled callback.
type Task struct {
	t *task
}

// Cancel prevents any future firing of the task. It is safe to call more
// than once and safe to call from within the task body.
func (t Task) Cancel() {
	if t.t != nil {
		t.t.cancelled = true
	}
}

// Deadline reports the instant the task will next fire. ok is false for a
// cancelled task or a one-shot task that has already fired; for periodic
// tasks the deadline advances after each firing.
func (t Task) Deadline() (time.Duration, bool) {
	if t.t == nil || t.t.cancelled || t.t.done {
		return 0, false
	}
	return t.t.at, true
}

// NextDeadline reports the earliest deadline of any scheduled task, or
// ok=false when nothing is scheduled. The bound is conservative: cancelled
// tasks still in the heap are counted, so the true next firing may be
// later than reported — never earlier. This is exactly the guarantee the
// simulation's quiescent fast path needs to bound a macro-step window.
func (c *Clock) NextDeadline() (time.Duration, bool) {
	if len(c.tasks) == 0 {
		return 0, false
	}
	return c.tasks[0].at, true
}

// After schedules fn to run once when the clock reaches Now()+d.
func (c *Clock) After(d time.Duration, fn func()) Task {
	return c.schedule(c.now+d, 0, fn)
}

// Every schedules fn to run each period, first firing at Now()+period.
// Every panics if period is not positive.
func (c *Clock) Every(period time.Duration, fn func()) Task {
	if period <= 0 {
		panic(fmt.Sprintf("vtime: non-positive period %v", period))
	}
	return c.schedule(c.now+period, period, fn)
}

// EveryAt schedules fn each period with the first firing at Now()+first.
// This allows deliberate phase offsets between periodic controllers, which
// the ECL uses to interleave socket-level loops.
func (c *Clock) EveryAt(first, period time.Duration, fn func()) Task {
	if period <= 0 {
		panic(fmt.Sprintf("vtime: non-positive period %v", period))
	}
	return c.schedule(c.now+first, period, fn)
}

func (c *Clock) schedule(at time.Duration, period time.Duration, fn func()) Task {
	t := &task{at: at, period: period, fn: fn, seq: c.seq}
	c.seq++
	heap.Push(&c.tasks, t)
	return Task{t: t}
}

// Pending reports the number of scheduled, non-cancelled tasks. Intended
// for tests.
func (c *Clock) Pending() int {
	n := 0
	for _, t := range c.tasks {
		if !t.cancelled {
			n++
		}
	}
	return n
}

type task struct {
	at        time.Duration
	period    time.Duration
	fn        func()
	seq       uint64
	cancelled bool
	done      bool
}

type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }

func (h taskHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *taskHeap) Push(x any) { *h = append(*h, x.(*task)) }

func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
