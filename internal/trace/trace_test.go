package trace

import (
	"testing"
	"time"
)

func TestSeriesStats(t *testing.T) {
	var s Series
	for i, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(time.Duration(i)*time.Second, v)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := s.Max(); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := s.Percentile(0.5); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
	if got := s.Percentile(1.0); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := s.Percentile(0.01); got != 1 {
		t.Errorf("P1 = %v, want 1", got)
	}
}

func TestEmptySeriesStats(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 || s.Percentile(0.5) != 0 {
		t.Error("empty series stats should be 0")
	}
	if s.Integrate(time.Hour) != 0 {
		t.Error("empty series integral should be 0")
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	var s Series
	s.Add(2*time.Second, 1)
	s.Add(time.Second, 2)
}

func TestIntegratePiecewiseConstant(t *testing.T) {
	var s Series
	s.Add(0, 10)             // 10 W for 2 s = 20 J
	s.Add(2*time.Second, 20) // 20 W for 3 s = 60 J
	got := s.Integrate(5 * time.Second)
	if got != 80 {
		t.Errorf("Integrate = %v, want 80", got)
	}
	// End before the last sample: that segment contributes nothing
	// negative.
	if got := s.Integrate(2 * time.Second); got != 20 {
		t.Errorf("Integrate(2s) = %v, want 20", got)
	}
}

// TestIntegrateClipsToEnd is a regression test: an integration horizon
// falling inside the series must clip the straddling segment to end and
// ignore samples at or after it. The unclipped version integrated the
// full segment past end and over-counted.
func TestIntegrateClipsToEnd(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(2*time.Second, 20)
	s.Add(4*time.Second, 40)
	// 10 W for 2 s + 20 W for 1 s (clipped at 3 s); the 4 s sample is
	// beyond the horizon entirely.
	if got := s.Integrate(3 * time.Second); got != 40 {
		t.Errorf("Integrate(3s) = %v, want 40", got)
	}
	// Horizon inside the first segment.
	if got := s.Integrate(time.Second); got != 10 {
		t.Errorf("Integrate(1s) = %v, want 10", got)
	}
	// Degenerate horizon.
	if got := s.Integrate(0); got != 0 {
		t.Errorf("Integrate(0) = %v, want 0", got)
	}
}

func TestCountAbove(t *testing.T) {
	var s Series
	for i, v := range []float64{50, 150, 99, 101, 100} {
		s.Add(time.Duration(i), v)
	}
	if got := s.CountAbove(100); got != 2 {
		t.Errorf("CountAbove(100) = %d, want 2", got)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Add("power", 0, 100)
	r.Add("power", time.Second, 110)
	r.Add("latency", 0, 5)
	if got := r.Series("power").Len(); got != 2 {
		t.Errorf("power samples = %d", got)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "power" || names[1] != "latency" {
		t.Errorf("Names = %v", names)
	}
	// Series is idempotent.
	if r.Series("power") != r.Series("power") {
		t.Error("Series not idempotent")
	}
}
