package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteCSV exports all recorded series as one CSV table: a time column
// followed by one column per series, rows aligned on the union of sample
// times (missing samples carry the previous value forward). Intended for
// plotting experiment traces externally.
func (r *Recorder) WriteCSV(w io.Writer) error {
	names := r.Names()
	// Union of timestamps.
	stamps := map[time.Duration]bool{}
	for _, n := range names {
		for _, t := range r.Series(n).Times {
			stamps[t] = true
		}
	}
	times := make([]time.Duration, 0, len(stamps))
	//ecllint:order-independent keys are collected into a slice and sorted before any ordered use
	for t := range stamps {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	cw := csv.NewWriter(w)
	header := append([]string{"t_seconds"}, names...)
	if err := cw.Write(header); err != nil {
		return err
	}
	idx := make([]int, len(names))
	last := make([]float64, len(names))
	for _, t := range times {
		row := make([]string, 0, len(names)+1)
		row = append(row, fmt.Sprintf("%.3f", t.Seconds()))
		for i, n := range names {
			s := r.Series(n)
			for idx[i] < len(s.Times) && s.Times[idx[i]] <= t {
				last[i] = s.Values[idx[i]]
				idx[i]++
			}
			row = append(row, fmt.Sprintf("%g", last[i]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
