package trace

import (
	"bytes"
	"encoding/csv"
	"testing"
	"time"
)

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Add("power", 0, 100)
	r.Add("power", time.Second, 110)
	r.Add("latency", 500*time.Millisecond, 5)
	r.Add("latency", time.Second, 6)

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + 3 distinct timestamps
		t.Fatalf("rows = %d, want 4: %v", len(rows), rows)
	}
	if rows[0][0] != "t_seconds" || rows[0][1] != "power" || rows[0][2] != "latency" {
		t.Fatalf("header = %v", rows[0])
	}
	// t=0: power 100, latency carries 0 (no sample yet).
	if rows[1][1] != "100" || rows[1][2] != "0" {
		t.Fatalf("row t=0: %v", rows[1])
	}
	// t=0.5: power carried forward.
	if rows[2][1] != "100" || rows[2][2] != "5" {
		t.Fatalf("row t=0.5: %v", rows[2])
	}
	// t=1: both updated.
	if rows[3][1] != "110" || rows[3][2] != "6" {
		t.Fatalf("row t=1: %v", rows[3])
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRecorder().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("even an empty recorder writes a header")
	}
}
