// Package trace records time series of experiment metrics (power, load,
// latency, applied configuration) and computes summary statistics. It
// backs the figure and table regeneration harness.
package trace

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Series is one named time series.
type Series struct {
	Name   string
	Times  []time.Duration
	Values []float64
}

// Add appends a sample. Samples must be added in time order.
func (s *Series) Add(t time.Duration, v float64) {
	if n := len(s.Times); n > 0 && t < s.Times[n-1] {
		panic(fmt.Sprintf("trace: out-of-order sample %v after %v in %s", t, s.Times[n-1], s.Name))
	}
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Mean returns the arithmetic mean of the values, or 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	t := 0.0
	for _, v := range s.Values {
		t += v
	}
	return t / float64(len(s.Values))
}

// Max returns the maximum value, or 0 when empty.
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// Min returns the minimum value, or 0 when empty.
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.Values {
		if v < min {
			min = v
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// Percentile returns the p-quantile (0..1) of the values using
// nearest-rank, or 0 when empty.
func (s *Series) Percentile(p float64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.Values...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Integrate computes the time integral of the series over [0, end]
// (piecewise-constant, each value holding until the next sample; the
// final value holds until end). Samples at or after end contribute
// nothing, and a segment straddling end is clipped to it, so an
// integration horizon shorter than the series never over-counts. For a
// power series in watts this yields joules.
func (s *Series) Integrate(end time.Duration) float64 {
	total := 0.0
	for i, t := range s.Times {
		if t >= end {
			break
		}
		next := end
		if i+1 < len(s.Times) && s.Times[i+1] < end {
			next = s.Times[i+1]
		}
		if next > t {
			total += s.Values[i] * (next - t).Seconds()
		}
	}
	return total
}

// CountAbove returns how many samples exceed the threshold.
func (s *Series) CountAbove(threshold float64) int {
	n := 0
	for _, v := range s.Values {
		if v > threshold {
			n++
		}
	}
	return n
}

// Recorder collects named series.
type Recorder struct {
	series map[string]*Series
	order  []string
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Series returns (creating if needed) the series with the given name.
func (r *Recorder) Series(name string) *Series {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	return s
}

// Names returns the recorded series names in creation order.
func (r *Recorder) Names() []string { return append([]string(nil), r.order...) }

// Add is shorthand for Series(name).Add(t, v).
func (r *Recorder) Add(name string, t time.Duration, v float64) {
	r.Series(name).Add(t, v)
}
