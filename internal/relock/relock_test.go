package relock

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func compareStrings(t *testing.T, a, b string, opts Options) FileReport {
	t.Helper()
	return compareBytes([]byte(a), []byte(b), opts)
}

func TestIdenticalFilesAreIdentical(t *testing.T) {
	r := compareStrings(t, "energy 123.456 J\n", "energy 123.456 J\n", Options{})
	if !r.Identical || !r.OK() {
		t.Fatalf("identical bytes not reported identical: %+v", r)
	}
}

func TestFloatWithinEpsilonAgrees(t *testing.T) {
	r := compareStrings(t,
		"ecl energy 35123.456789012 J psu 40333.123456789 J\n",
		"ecl energy 35123.456789019 J psu 40333.123456780 J\n", Options{})
	if !r.OK() {
		t.Fatalf("within-eps floats rejected: %s", r.Err)
	}
	if r.Identical {
		t.Fatal("different bytes reported identical")
	}
	if r.Floats != 2 {
		t.Fatalf("expected 2 float tokens, compared %d", r.Floats)
	}
	if r.MaxRel == 0 {
		t.Fatal("max rel delta not recorded")
	}
}

func TestFloatBeyondEpsilonFails(t *testing.T) {
	r := compareStrings(t, "energy 100.000000 J\n", "energy 100.100000 J\n", Options{})
	if r.OK() {
		t.Fatal("0.1% drift accepted by a 1e-9 epsilon")
	}
}

func TestLastPlaceUnitToleratesTableRounding(t *testing.T) {
	// Rendered tables round; a regrouped sum may flip the last printed
	// digit (97.5 vs 97.6) while agreeing internally to 1e-12.
	r := compareStrings(t, "savings 35.1%\n", "savings 35.2%\n", Options{})
	if !r.OK() {
		t.Fatalf("one-unit-in-last-place rejected: %s", r.Err)
	}
	// Two units in the last place is a real disagreement.
	r = compareStrings(t, "savings 35.1%\n", "savings 35.3%\n", Options{})
	if r.OK() {
		t.Fatal("two units in the last place accepted")
	}
}

func TestIntegerTokensMustBeExact(t *testing.T) {
	r := compareStrings(t, "completed 123456 queries\n", "completed 123457 queries\n", Options{})
	if r.OK() {
		t.Fatal("integer observable drift accepted")
	}
	// Integer-form timestamps inside JSONL lines too.
	r = compareStrings(t,
		`{"t_ns":1000000,"type":"apply","socket":0,"a":1.5}`+"\n",
		`{"t_ns":1000001,"type":"apply","socket":0,"a":1.5}`+"\n", Options{})
	if r.OK() {
		t.Fatal("t_ns drift accepted")
	}
}

func TestJSONLFloatFieldGetsEpsilon(t *testing.T) {
	r := compareStrings(t,
		`{"t_ns":1000000,"powerW":97.50000000001}`+"\n",
		`{"t_ns":1000000,"powerW":97.50000000002}`+"\n", Options{})
	if !r.OK() {
		t.Fatalf("within-eps JSONL float rejected: %s", r.Err)
	}
}

func TestNonNumericDriftFails(t *testing.T) {
	r := compareStrings(t, "most applied 28t@{14x2100}\n", "most applied 28t@{14x1900}\n", Options{})
	if r.OK() {
		t.Fatal("configuration-name drift accepted")
	}
}

func TestStructuralDriftFails(t *testing.T) {
	if r := compareStrings(t, "a 1 b\n", "a 1 b extra 2\n", Options{}); r.OK() {
		t.Fatal("token-count drift accepted")
	}
	if r := compareStrings(t, "a 1\n", "a 1\nmore\n", Options{}); r.OK() {
		t.Fatal("line-count drift accepted")
	}
}

func TestIdentifiersWithDigitsCompareExactly(t *testing.T) {
	// Hex digests, duration suffixes, config keys: digit runs glued to
	// letters are identifier fragments, not floats.
	r := compareStrings(t, "digest b524238adf latency 12.5ms\n", "digest b524238adf latency 12.5ms\n", Options{})
	if !r.OK() || !r.Identical {
		t.Fatalf("identical identifier line rejected: %+v", r)
	}
	r = compareStrings(t, "latency 100ms\n", "latency 101ms\n", Options{})
	if r.OK() {
		t.Fatal("duration drift accepted (durations are integer-exact)")
	}
}

func TestScientificNotation(t *testing.T) {
	r := compareStrings(t, "v 1.234567890123e+08\n", "v 1.234567890124e+08\n", Options{})
	if !r.OK() {
		t.Fatalf("within-eps scientific float rejected: %s", r.Err)
	}
	r = compareStrings(t, "v 1.23e+08\n", "v 1.26e+08\n", Options{})
	if r.OK() {
		t.Fatal("3-units-last-place scientific drift accepted")
	}
}

func TestNegativeNumbers(t *testing.T) {
	r := compareStrings(t, "delta -0.5000000000001\n", "delta -0.5000000000002\n", Options{})
	if !r.OK() {
		t.Fatalf("within-eps negative float rejected: %s", r.Err)
	}
}

func TestCompareTrees(t *testing.T) {
	old := t.TempDir()
	new := t.TempDir()
	write := func(dir, name, content string) {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(old, "fig13.txt", "ecl 35123.4567890123 J\n")
	write(new, "fig13.txt", "ecl 35123.4567890124 J\n")
	write(old, "sub/events.jsonl", `{"t_ns":5,"w":1.5}`+"\n")
	write(new, "sub/events.jsonl", `{"t_ns":5,"w":1.5}`+"\n")

	reports, err := CompareTrees(old, new, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("expected 2 reports, got %d", len(reports))
	}
	if !AllOK(reports) {
		t.Fatalf("agreeing trees rejected: %+v", reports)
	}
	var sb strings.Builder
	Render(&sb, reports)
	if !strings.Contains(sb.String(), "fig13.txt") {
		t.Fatalf("render missing file row:\n%s", sb.String())
	}

	// Structural: a file missing on one side is an error, not a report.
	write(old, "extra.txt", "x\n")
	if _, err := CompareTrees(old, new, Options{}); err == nil {
		t.Fatal("missing file pair not reported")
	}
}
