// Package relock implements the numeric-aware semantic differ behind
// scripts/relock.sh and cmd/semdiff. A digest re-lock (DESIGN.md §16)
// regenerates every figure and table under the old and the new float
// grouping and must prove that nothing changed *semantically*: every
// non-numeric byte and every integer-rendered observable is identical,
// and every float-rendered value agrees within a tight relative epsilon
// (or one unit in its last printed decimal place, for tables that round).
//
// The differ is layout-driven, not format-driven: it tokenizes each line
// into numeric and non-numeric tokens and applies the comparison rule
// per token. That one rule covers rendered tables, trace CSVs, JSONL
// event streams, and Prometheus expositions alike — integer fields
// (timestamps, counts, socket ids) stay bit-exact automatically because
// they render without a decimal point, while energies and powers get the
// epsilon.
package relock

import (
	"bufio"
	"crypto/sha256"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Options tunes the comparison.
type Options struct {
	// RelEps is the maximum relative difference tolerated between two
	// float-form tokens. Zero means the default 1e-9.
	RelEps float64
	// AbsFloor tolerates absolute differences below it regardless of
	// relative size (guards tiny values whose relative error is
	// meaningless). Zero means the default 1e-12.
	AbsFloor float64
}

func (o Options) relEps() float64 {
	if o.RelEps > 0 {
		return o.RelEps
	}
	return 1e-9
}

func (o Options) absFloor() float64 {
	if o.AbsFloor > 0 {
		return o.AbsFloor
	}
	return 1e-12
}

// FileReport is the outcome of comparing one file pair.
type FileReport struct {
	Path      string // relative path within the compared trees
	OldSHA256 string
	NewSHA256 string
	Identical bool    // byte-identical files
	Floats    int     // float-form tokens compared
	MaxRel    float64 // largest relative difference among accepted floats
	Err       string  // first semantic mismatch, empty when the pair agrees
}

// OK reports whether the pair agrees semantically.
func (r FileReport) OK() bool { return r.Err == "" }

// CompareFiles compares two files token by token. The returned report's
// Err field is empty when they agree semantically.
func CompareFiles(oldPath, newPath string, opts Options) (FileReport, error) {
	ob, err := os.ReadFile(oldPath)
	if err != nil {
		return FileReport{}, err
	}
	nb, err := os.ReadFile(newPath)
	if err != nil {
		return FileReport{}, err
	}
	r := compareBytes(ob, nb, opts)
	r.Path = filepath.Base(oldPath)
	return r, nil
}

func compareBytes(ob, nb []byte, opts Options) FileReport {
	r := FileReport{
		OldSHA256: fmt.Sprintf("%x", sha256.Sum256(ob)),
		NewSHA256: fmt.Sprintf("%x", sha256.Sum256(nb)),
	}
	if r.OldSHA256 == r.NewSHA256 {
		r.Identical = true
		return r
	}
	os1 := bufio.NewScanner(strings.NewReader(string(ob)))
	ns1 := bufio.NewScanner(strings.NewReader(string(nb)))
	os1.Buffer(nil, 1<<24)
	ns1.Buffer(nil, 1<<24)
	line := 0
	for {
		oOK, nOK := os1.Scan(), ns1.Scan()
		line++
		if oOK != nOK {
			r.Err = fmt.Sprintf("line %d: files have different line counts", line)
			return r
		}
		if !oOK {
			return r
		}
		if err := compareLine(os1.Text(), ns1.Text(), opts, &r); err != "" {
			r.Err = fmt.Sprintf("line %d: %s", line, err)
			return r
		}
	}
}

// compareLine tokenizes both lines and applies the per-token rule,
// accumulating float statistics into r. It returns a description of the
// first mismatch, or "".
func compareLine(o, n string, opts Options, r *FileReport) string {
	ot := tokenize(o)
	nt := tokenize(n)
	if len(ot) != len(nt) {
		return fmt.Sprintf("token count differs (%d vs %d): %q vs %q", len(ot), len(nt), o, n)
	}
	for i := range ot {
		a, b := ot[i], nt[i]
		if a.numeric != b.numeric {
			return fmt.Sprintf("token %d: %q vs %q (numeric shape differs)", i, a.text, b.text)
		}
		if !a.numeric || isIntForm(a.text) || isIntForm(b.text) {
			// Non-numeric text and integer-rendered observables
			// (timestamps, counts, ids) must match byte for byte.
			if a.text != b.text {
				return fmt.Sprintf("token %d: %q vs %q (exact-match token differs)", i, a.text, b.text)
			}
			continue
		}
		av, errA := strconv.ParseFloat(a.text, 64)
		bv, errB := strconv.ParseFloat(b.text, 64)
		if errA != nil || errB != nil {
			if a.text != b.text {
				return fmt.Sprintf("token %d: %q vs %q (unparseable numeric differs)", i, a.text, b.text)
			}
			continue
		}
		r.Floats++
		rel, ok := floatsAgree(av, bv, a.text, b.text, opts)
		if !ok {
			return fmt.Sprintf("token %d: %q vs %q (rel delta %.3g exceeds eps %.3g)",
				i, a.text, b.text, rel, opts.relEps())
		}
		if rel > r.MaxRel {
			r.MaxRel = rel
		}
	}
	return ""
}

// floatsAgree applies the float rule: equal, below the absolute floor,
// within the relative epsilon, or within one unit in the last printed
// decimal place (rendered tables round, so a regrouped sum may flip the
// final digit while agreeing to far more precision internally).
func floatsAgree(a, b float64, at, bt string, opts Options) (rel float64, ok bool) {
	if a == b {
		return 0, true
	}
	diff := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	rel = diff / m
	if diff <= opts.absFloor() || rel <= opts.relEps() {
		return rel, true
	}
	unit := math.Max(lastPlaceUnit(at), lastPlaceUnit(bt))
	if unit > 0 && diff <= unit*(1+1e-9) {
		return rel, true
	}
	return rel, false
}

// lastPlaceUnit returns the magnitude of one unit in the token's last
// printed decimal place: 0.01 for "97.53", 1 for "97", 10 for "9.7e1"
// style is approximated via the exponent. Returns 0 when the token has
// no recognizable place value.
func lastPlaceUnit(t string) float64 {
	mant := t
	exp := 0
	if i := strings.IndexAny(t, "eE"); i >= 0 {
		e, err := strconv.Atoi(t[i+1:])
		if err != nil {
			return 0
		}
		exp = e
		mant = t[:i]
	}
	places := 0
	if i := strings.IndexByte(mant, '.'); i >= 0 {
		places = len(mant) - i - 1
	}
	return math.Pow(10, float64(exp-places))
}

// isIntForm reports whether a numeric token is integer-rendered: no
// decimal point, no exponent.
func isIntForm(t string) bool {
	return !strings.ContainsAny(t, ".eE")
}

// token is one tokenizer output: a numeric candidate or a stretch of
// surrounding text.
type token struct {
	text    string
	numeric bool
}

// tokenize splits a line into numeric and non-numeric tokens. A numeric
// token is an optional sign (only after a non-alphanumeric boundary),
// digits with an optional fraction and exponent. Words containing digits
// (identifiers like "socket0" or hex digests) stay non-numeric because
// the digit run is flagged numeric only when it stands free of letters.
func tokenize(s string) []token {
	var out []token
	i := 0
	flushFrom := 0
	for i < len(s) {
		start := i
		if c := s[i]; c == '+' || c == '-' {
			if i+1 < len(s) && isDigit(s[i+1]) && !boundedByWord(s, start) {
				i++
			} else {
				i++
				continue
			}
		}
		if i < len(s) && isDigit(s[i]) && !boundedByWord(s, start) {
			j := i
			for j < len(s) && isDigit(s[j]) {
				j++
			}
			if j < len(s) && s[j] == '.' && j+1 < len(s) && isDigit(s[j+1]) {
				j++
				for j < len(s) && isDigit(s[j]) {
					j++
				}
			}
			if j < len(s) && (s[j] == 'e' || s[j] == 'E') {
				k := j + 1
				if k < len(s) && (s[k] == '+' || s[k] == '-') {
					k++
				}
				if k < len(s) && isDigit(s[k]) {
					for k < len(s) && isDigit(s[k]) {
						k++
					}
					j = k
				}
			}
			// A trailing word character makes this an identifier
			// fragment ("100ms", "1e3x"), not a free-standing number —
			// except the unit suffixes duration rendering glues on,
			// which stay part of the non-numeric text while the digits
			// still compare exactly (integer-form rule).
			if j < len(s) && isWordChar(s[j]) {
				i = j
				continue
			}
			if flushFrom < start {
				out = append(out, token{text: s[flushFrom:start]})
			}
			out = append(out, token{text: s[start:j], numeric: true})
			i = j
			flushFrom = i
			continue
		}
		i++
	}
	if flushFrom < len(s) {
		out = append(out, token{text: s[flushFrom:]})
	}
	return out
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

// boundedByWord reports whether position i directly follows a word
// character (letter or underscore), which marks the digits as part of an
// identifier rather than a free-standing number.
func boundedByWord(s string, i int) bool {
	return i > 0 && isWordChar(s[i-1])
}

// CompareTrees walks two directory trees that must contain the same
// relative file set and compares each pair. It returns one report per
// file, sorted by path, plus an error for structural problems (missing
// or extra files, unreadable directories).
func CompareTrees(oldDir, newDir string, opts Options) ([]FileReport, error) {
	oldSet, err := fileSet(oldDir)
	if err != nil {
		return nil, err
	}
	newSet, err := fileSet(newDir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for p := range oldSet {
		if !newSet[p] {
			return nil, fmt.Errorf("relock: %s exists under %s but not %s", p, oldDir, newDir)
		}
		paths = append(paths, p)
	}
	for p := range newSet {
		if !oldSet[p] {
			return nil, fmt.Errorf("relock: %s exists under %s but not %s", p, newDir, oldDir)
		}
	}
	sort.Strings(paths)
	reports := make([]FileReport, 0, len(paths))
	for _, p := range paths {
		r, err := CompareFiles(filepath.Join(oldDir, p), filepath.Join(newDir, p), opts)
		if err != nil {
			return nil, err
		}
		r.Path = p
		reports = append(reports, r)
	}
	return reports, nil
}

func fileSet(dir string) (map[string]bool, error) {
	set := make(map[string]bool)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		set[rel] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	return set, nil
}

// Render writes the comparison as the re-lock digest table: one row per
// file with both digests, the float statistics, and the verdict.
func Render(w io.Writer, reports []FileReport) {
	fmt.Fprintf(w, "%-32s  %-10s  %-10s  %7s  %9s  %s\n",
		"file", "old", "new", "floats", "max rel", "verdict")
	for _, r := range reports {
		verdict := "ok"
		switch {
		case !r.OK():
			verdict = "MISMATCH: " + r.Err
		case r.Identical:
			verdict = "identical"
		}
		fmt.Fprintf(w, "%-32s  %-10s  %-10s  %7d  %9.2e  %s\n",
			r.Path, r.OldSHA256[:10], r.NewSHA256[:10], r.Floats, r.MaxRel, verdict)
	}
}

// AllOK reports whether every file pair agrees.
func AllOK(reports []FileReport) bool {
	for _, r := range reports {
		if !r.OK() {
			return false
		}
	}
	return true
}
