package ecldb_test

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"ecldb"
)

func TestWorkloadsCatalog(t *testing.T) {
	ws := ecldb.Workloads()
	if len(ws) != 11 {
		t.Fatalf("catalog = %d workloads, want 11", len(ws))
	}
	want := map[string]bool{"kv-indexed": true, "tatp-nonindexed": true, "ssb-indexed": true}
	for _, w := range ws {
		delete(want, w)
	}
	if len(want) != 0 {
		t.Errorf("missing workloads: %v", want)
	}
}

func TestCapacityAPI(t *testing.T) {
	c, err := ecldb.Capacity("kv-nonindexed", 1)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Fatal("capacity should be positive")
	}
	if _, err := ecldb.Capacity("nope", 1); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := ecldb.Run(ecldb.RunConfig{Workload: "nope",
		Load: ecldb.LoadSpec{Duration: time.Second}}); err == nil {
		t.Error("unknown workload should fail")
	}
	if _, err := ecldb.Run(ecldb.RunConfig{Workload: "kv-indexed"}); err == nil {
		t.Error("missing duration should fail")
	}
	if _, err := ecldb.Run(ecldb.RunConfig{Workload: "kv-indexed",
		Load: ecldb.LoadSpec{Kind: "nope", Duration: time.Second}}); err == nil {
		t.Error("unknown load kind should fail")
	}
	if _, err := ecldb.Run(ecldb.RunConfig{Workload: "kv-indexed", Governor: ecldb.GovernorECL,
		Load:        ecldb.LoadSpec{Duration: time.Second},
		Maintenance: "nope"}); err == nil {
		t.Error("unknown maintenance should fail")
	}
	if _, err := ecldb.Run(ecldb.RunConfig{Workload: "kv-indexed", SwitchTo: "nope",
		Load: ecldb.LoadSpec{Duration: time.Second}}); err == nil {
		t.Error("unknown switch workload should fail")
	}
}

func TestProfileAPI(t *testing.T) {
	points, err := ecldb.Profile("atomic-contention")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 144 {
		t.Fatalf("points = %d, want 144 (145 minus idle)", len(points))
	}
	optimal, skyline := 0, 0
	for _, p := range points {
		if p.PerfLevel < 0 || p.PerfLevel > 1 || p.EffLevel < 0 || p.EffLevel > 1 {
			t.Fatalf("point %s outside unit square: %v/%v", p.Config, p.PerfLevel, p.EffLevel)
		}
		if p.Zone == "optimal" {
			optimal++
			// The paper's Figure 10b headline: two HyperThreads at
			// turbo with the lowest uncore clock.
			if p.Threads != 2 || p.UncoreMHz != 1200 {
				t.Errorf("atomic optimum = %s", p.Config)
			}
		}
		if p.OnSkyline {
			skyline++
		}
	}
	if optimal != 1 {
		t.Errorf("optimal zone hosts %d configurations, want exactly 1", optimal)
	}
	if skyline < 3 {
		t.Errorf("skyline = %d points", skyline)
	}
	if _, err := ecldb.Profile("nope"); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestProfileCacheViaPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	cache := t.TempDir() + "/profiles.json"
	cfg := ecldb.RunConfig{
		Workload:     "kv-nonindexed",
		Load:         ecldb.LoadSpec{Kind: "constant", Level: 0.3, Duration: 5 * time.Second},
		Governor:     ecldb.GovernorECL,
		ProfileCache: cache,
		Seed:         17,
	}
	first, err := ecldb.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("profile cache not written: %v", err)
	}
	// The cached second run reproduces the first (same seed, profiles
	// identical whether measured or restored).
	second, err := ecldb.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Completed != first.Completed {
		t.Errorf("cached run completed %d, first run %d", second.Completed, first.Completed)
	}
	if second.MostApplied != first.MostApplied {
		t.Errorf("cached run converged to %s, first to %s", second.MostApplied, first.MostApplied)
	}
}

func TestRunEndToEndViaPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	load := ecldb.LoadSpec{Kind: "constant", Level: 0.4, Duration: 15 * time.Second}
	base, err := ecldb.Run(ecldb.RunConfig{
		Workload: "kv-nonindexed", Load: load, Governor: ecldb.GovernorBaseline, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	eco, err := ecldb.Run(ecldb.RunConfig{
		Workload: "kv-nonindexed", Load: load, Governor: ecldb.GovernorECL, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if base.Completed == 0 || eco.Completed == 0 {
		t.Fatal("no queries completed")
	}
	if eco.EnergyJ >= base.EnergyJ {
		t.Errorf("ECL energy %.0f should undercut baseline %.0f", eco.EnergyJ, base.EnergyJ)
	}
	if eco.MostApplied == "" {
		t.Error("ECL should report its most applied configuration")
	}
	if base.MostApplied != "" {
		t.Error("baseline should not report a configuration")
	}
	ts, vs := eco.Series("power_rapl_w")
	if len(ts) == 0 || len(ts) != len(vs) {
		t.Error("series accessor degenerate")
	}
	if eco.CapacityQps <= 0 {
		t.Error("capacity missing")
	}
}

func TestRunObserveFillsExplainAndEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	load := ecldb.LoadSpec{Kind: "constant", Level: 0.4, Duration: 10 * time.Second}
	res, err := ecldb.Run(ecldb.RunConfig{
		Workload: "kv-nonindexed", Load: load, Governor: ecldb.GovernorECL,
		Observe: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Explain, "residency:") {
		t.Errorf("Explain missing residency section:\n%s", res.Explain)
	}
	if res.Events["ConfigApply"] == 0 || res.Events["DemandUpdate"] == 0 {
		t.Errorf("Events census incomplete: %v", res.Events)
	}
	if res.Events["QueryComplete"] != res.Completed {
		t.Errorf("QueryComplete %d != completed %d", res.Events["QueryComplete"], res.Completed)
	}

	// Without Observe the observability fields stay zero.
	plain, err := ecldb.Run(ecldb.RunConfig{
		Workload: "kv-nonindexed", Load: load, Governor: ecldb.GovernorECL, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Explain != "" || plain.Events != nil {
		t.Error("unobserved run carries observability output")
	}
	// And observation is invisible to the outcome.
	if plain.EnergyJ != res.EnergyJ || plain.Completed != res.Completed {
		t.Errorf("Observe changed the run: energy %g vs %g, completed %d vs %d",
			plain.EnergyJ, res.EnergyJ, plain.Completed, res.Completed)
	}
}

func TestRunTraceQueriesFillsBreakdownAndTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	load := ecldb.LoadSpec{Kind: "constant", Level: 0.4, Duration: 10 * time.Second}
	res, err := ecldb.Run(ecldb.RunConfig{
		Workload: "kv-nonindexed", Load: load, Governor: ecldb.GovernorECL,
		TraceQueries: true, TraceSampleEvery: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.PhaseBreakdown, "query phase breakdown") ||
		!strings.Contains(res.PhaseBreakdown, "critical path:") {
		t.Errorf("PhaseBreakdown missing:\n%s", res.PhaseBreakdown)
	}
	// TraceQueries implies the observability layer: the explain report is
	// present and ends with the breakdown.
	if !strings.Contains(res.Explain, "residency:") ||
		!strings.Contains(res.Explain, "query phase breakdown") {
		t.Errorf("Explain missing sections:\n%s", res.Explain)
	}
	if res.WriteQueryTrace == nil {
		t.Fatal("WriteQueryTrace not set")
	}
	var buf bytes.Buffer
	if err := res.WriteQueryTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("query trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("query trace is empty")
	}
	// Tracing is invisible to the outcome.
	plain, err := ecldb.Run(ecldb.RunConfig{
		Workload: "kv-nonindexed", Load: load, Governor: ecldb.GovernorECL, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if plain.EnergyJ != res.EnergyJ || plain.Completed != res.Completed {
		t.Errorf("TraceQueries changed the run: energy %g vs %g, completed %d vs %d",
			plain.EnergyJ, res.EnergyJ, plain.Completed, res.Completed)
	}
	if plain.PhaseBreakdown != "" || plain.WriteQueryTrace != nil {
		t.Error("untraced run carries trace output")
	}
}
