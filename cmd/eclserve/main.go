// Command eclserve runs one ECL-governed simulation and serves it live
// over HTTP: a built-in dashboard at /, the Prometheus text exposition at
// /metrics, and a Server-Sent-Events stream of decision events, samples,
// and query spans at /events — all from a single stdlib-only binary.
//
// Usage:
//
//	eclserve -fig 13 -listen :8080 -pace 1x     # watch the spike experiment in real time
//	eclserve -fig 14 -pace 10x                  # twitter profile at 10x speed
//	eclserve -workload tatp -load constant -level 0.6 -duration 2m -pace max
//
// -pace sets the virtual-to-wall speed ratio: "1x" replays the run in
// real time, "10x" ten times faster, "max" (or "0") as fast as the host
// can simulate. Pacing only parks the simulation thread between quanta —
// it never changes simulation state, so a served run is byte-identical
// to a headless one (the serve package's neutrality test pins this).
//
// -eattr (on by default) attaches the energy-attribution meter: the
// dashboard gains the energy panel (per-query joules, class split,
// saving versus the frozen always-max baseline) and /metrics gains the
// ecl_energy_* series. The meter only mirrors values the run already
// computes, so attaching it never changes simulation results.
//
// When the run finishes the process keeps serving the final state —
// dashboard, metrics, and late /events subscribers all keep working — so
// the result can be inspected at leisure; interrupt to quit.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"ecldb/internal/bench"
	"ecldb/internal/hw"
	"ecldb/internal/loadprofile"
	"ecldb/internal/obs"
	"ecldb/internal/obs/energyattr"
	"ecldb/internal/obs/trace"
	"ecldb/internal/serve"
	"ecldb/internal/sim"
	"ecldb/internal/workload"
)

// admitSampling thins QueryAdmit/QueryComplete events in the ring buffer:
// at thousands of queries per second they would otherwise evict every
// control decision between two snapshots. Counters stay exact; the
// decision stream excludes them anyway.
const admitSampling = 256

func main() {
	fig := flag.Int("fig", 0, "serve a figure experiment's ECL run (13 = spike, 14 = twitter)")
	wlName := flag.String("workload", "", "custom run: workload name (kv, tatp, tatp-indexed, ...)")
	loadName := flag.String("load", "spike", "custom run: load profile (spike, twitter, constant)")
	level := flag.Float64("level", 0.5, "custom run: constant-load level relative to capacity")
	duration := flag.Duration("duration", 3*time.Minute, "profile duration (virtual)")
	seed := flag.Int64("seed", 42, "random seed")
	listen := flag.String("listen", ":8080", "HTTP listen address")
	paceFlag := flag.String("pace", "1x", `virtual-to-wall speed ratio: "1x", "2.5x", ... or "max"/"0" for unpaced`)
	eventsCap := flag.Int("events-cap", 65536, "decision-event ring capacity (0 = unbounded; exact counts are kept either way)")
	qtraceSample := flag.Int("qtrace-sample", 16, "trace one query span per N admissions (1 = every query, 0 = tracing off)")
	eattr := flag.Bool("eattr", true, "attach the energy-attribution meter (dashboard energy panel, ecl_energy_* metrics)")
	flag.Parse()

	pace, err := parsePace(*paceFlag)
	exitOn(err)

	var wl workload.Workload
	var title, loadKind string
	switch {
	case *fig == 13:
		wl, title, loadKind = workload.NewKV(false), "fig 13 — spike overload", "spike"
	case *fig == 14:
		wl, title, loadKind = workload.NewKV(false), "fig 14 — twitter day", "twitter"
	case *wlName != "":
		wl = workload.ByName(*wlName)
		if wl == nil {
			exitOn(fmt.Errorf("unknown workload %q", *wlName))
		}
		title, loadKind = *wlName+" / "+*loadName, *loadName
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("measuring %s capacity...\n", wl.Name())
	capacity, err := bench.MeasureCapacity(wl, *seed)
	exitOn(err)

	var load loadprofile.Profile
	switch loadKind {
	case "spike":
		load = loadprofile.Spike{PeakQps: capacity * 1.15, Len: *duration}
	case "twitter":
		load = loadprofile.Twitter{BaseQps: capacity * 0.8, Len: *duration}
	case "constant":
		load = loadprofile.Constant{Qps: capacity * *level, Len: *duration}
	default:
		exitOn(fmt.Errorf("unknown load profile %q", loadKind))
	}

	ob := obs.New(*eventsCap)
	ob.Log.SetSampling(obs.EvQueryAdmit, admitSampling)
	ob.Log.SetSampling(obs.EvQueryComplete, admitSampling)
	if *qtraceSample > 0 {
		ob.Trace = trace.New(*qtraceSample)
	}
	if *eattr {
		ob.Energy = energyattr.New(hw.HaswellEP().Sockets)
	}

	pub := serve.NewPublisher(ob, pace, 0)
	topo := hw.HaswellEP()
	srv := serve.NewServer(serve.Meta{
		Title:       title,
		Workload:    wl.Name(),
		Level:       loadKind,
		Sockets:     topo.Sockets,
		Threads:     topo.TotalThreads(),
		DurationNs:  duration.Nanoseconds(),
		Pace:        pace,
		Seed:        uint64(*seed),
		QTraceEvery: *qtraceSample,
	})
	go srv.Run(pub.Snapshots())

	l, err := net.Listen("tcp", *listen)
	exitOn(err)
	fmt.Printf("serving http://%s  (dashboard /, metrics /metrics, stream /events)\n", hostURL(*listen, l))
	go func() {
		if err := http.Serve(l, srv.Handler()); err != nil {
			fmt.Fprintln(os.Stderr, "eclserve:", err)
		}
	}()

	fmt.Printf("running %s: capacity %.0f qps, %s load for %v at %s\n",
		wl.Name(), capacity, loadKind, *duration, paceLabel(pace))
	start := time.Now()
	res, err := sim.Run(sim.Options{
		Workload: wl,
		Load:     load,
		Governor: sim.GovernorECL,
		Prewarm:  true,
		Seed:     *seed,
		Obs:      ob,
		Hook:     pub,
	})
	exitOn(err)
	fmt.Printf("run finished in %v wall: energy %.0f J  PSU %.0f J  completed %d  avg latency %v  violations %.1f%%\n",
		time.Since(start).Round(time.Millisecond), res.EnergyJ.Joules(), res.PSUEnergyJ.Joules(),
		res.Completed, res.AvgLatency, res.ViolationFrac*100)
	fmt.Println("still serving the final state; interrupt (Ctrl-C) to quit")
	select {}
}

// parsePace turns "1x", "2.5x", "0.5", "max", or "0" into the ratio the
// publisher expects (0 = unpaced).
func parsePace(s string) (float64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "max" || s == "" {
		return 0, nil
	}
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad -pace %q: want \"1x\", \"10x\", \"max\", or \"0\"", s)
	}
	return v, nil
}

func paceLabel(pace float64) string {
	if pace <= 0 {
		return "max speed"
	}
	return fmt.Sprintf("%gx real time", pace)
}

// hostURL renders a clickable address for the startup line: a bare
// ":8080" listen flag becomes "localhost:8080".
func hostURL(flagAddr string, l net.Listener) string {
	if strings.HasPrefix(flagAddr, ":") {
		return "localhost" + flagAddr
	}
	return l.Addr().String()
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "eclserve:", err)
		os.Exit(1)
	}
}
