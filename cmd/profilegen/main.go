// Command profilegen renders energy profiles (the paper's Figures 9, 10
// and the appendix Figures 17-20): configuration generation, skyline,
// ruling zones, and the savings metrics per workload.
//
// Usage:
//
//	profilegen                 # Figures 9, 10 and the appendix profiles
//	profilegen -fig 9          # generator-granularity comparison
//	profilegen -fig 10         # workload-dependent shapes
//	profilegen -fig 17         # appendix (17-20 are printed together)
//	profilegen -workload tatp-indexed   # one workload's profile
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"ecldb/internal/bench"
	"ecldb/internal/energy"
	"ecldb/internal/hw"
	"ecldb/internal/workload"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (9, 10, or 17-20); 0 runs all")
	wlName := flag.String("workload", "", "render the profile of one workload by name")
	parallel := flag.Int("parallel", 0, "worker goroutines for multi-profile sweeps (<1 = GOMAXPROCS); results are identical at any setting")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()
	bench.SetParallelism(*parallel)
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	exitOn(err)
	defer stopProfiles()

	if *wlName != "" {
		if err := renderWorkload(*wlName); err != nil {
			stopProfilesFn()
			fmt.Fprintln(os.Stderr, "profilegen:", err)
			os.Exit(1)
		}
		return
	}

	want9 := *fig == 0 || *fig == 9
	want10 := *fig == 0 || *fig == 10
	wantApp := *fig == 0 || (*fig >= 17 && *fig <= 20)
	if !want9 && !want10 && !wantApp {
		fmt.Fprintf(os.Stderr, "profilegen: unknown figure %d (want 9, 10, or 17-20)\n", *fig)
		os.Exit(2)
	}
	if want9 {
		r, err := bench.Figure9()
		exitOn(err)
		fmt.Println(r.Render())
	}
	if want10 {
		r, err := bench.Figure10()
		exitOn(err)
		fmt.Println(r.Render())
	}
	if wantApp {
		r, err := bench.AppendixProfiles()
		exitOn(err)
		fmt.Println(r.Render())
	}
}

func renderWorkload(name string) error {
	wl := workload.ByName(name)
	if wl == nil {
		return fmt.Errorf("unknown workload %q", name)
	}
	topo := hw.HaswellEP()
	cfgs, err := energy.Generate(topo, energy.DefaultGeneratorParams())
	if err != nil {
		return err
	}
	p := energy.NewProfile(topo, cfgs)
	if err := energy.EvaluateModel(p, topo, hw.DefaultPowerParams(), wl.Characteristics(), 0); err != nil {
		return err
	}
	opt := p.MostEfficient()
	fmt.Printf("workload %s: %d configurations, optimal %s (eff %.3g instr/J)\n",
		name, p.Size(), opt.Config, opt.Efficiency())
	fmt.Println("skyline (performance level -> efficiency level):")
	max := p.MaxScore()
	for _, e := range p.Skyline() {
		fmt.Printf("  %5.3f -> %5.3f   %s\n", e.Score/max, e.Efficiency()/opt.Efficiency(), e.Config)
	}
	return nil
}

func exitOn(err error) {
	if err != nil {
		stopProfilesFn()
		fmt.Fprintln(os.Stderr, "profilegen:", err)
		os.Exit(1)
	}
}

// stopProfilesFn finalizes any requested profiles; exitOn invokes it so
// profiles survive error exits too (os.Exit skips deferred calls).
var stopProfilesFn = func() {}

// startProfiles starts a CPU profile and arranges a heap profile at
// shutdown, returning the finalizer (also stored for exitOn).
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	done := false
	stopProfilesFn = func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profilegen:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profilegen:", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "heap profile written to %s\n", memPath)
		}
	}
	return stopProfilesFn, nil
}
