// Command ecllint runs the project's determinism and layering checks
// (internal/lint) over the given package patterns and exits non-zero on
// any finding:
//
//	go run ./cmd/ecllint ./...
//
// The analyzers and their rationale are documented in internal/lint and
// in DESIGN.md's "Determinism contract" section. Findings are suppressed
// inline with //ecllint:allow <analyzer> <reason> or, for map iteration,
// //ecllint:order-independent <reason> — a reason is mandatory.
//
// With -unused-directives, every suppression that no longer suppresses
// anything is itself a finding: stale justifications rot into license for
// future violations, so CI keeps the set minimal.
package main

import (
	"flag"
	"fmt"
	"os"

	"ecldb/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	dir := flag.String("C", ".", "module root to run in")
	unused := flag.Bool("unused-directives", false, "also flag //ecllint: suppressions that suppress nothing")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ecllint [-C dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Default()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecllint:", err)
		os.Exit(2)
	}
	diags := lint.RunConfig{ReportUnused: *unused}.Run(units, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ecllint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
