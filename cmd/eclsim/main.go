// Command eclsim runs the paper's end-to-end evaluation experiments
// (Figures 11, 13-16 and Table 1) or a custom simulation of the elastic
// data-oriented DBMS under a chosen governor, workload, and load profile.
//
// Usage:
//
//	eclsim -fig 13               # spike-profile experiment
//	eclsim -fig 14               # twitter-profile experiment
//	eclsim -fig 15               # adaptation experiment (also figure 16)
//	eclsim -table 1              # full Table 1 sweep
//	eclsim -workload tatp-indexed -load spike -duration 2m
//
// The observability flags export the ECL control plane of a run:
//
//	eclsim -fig 13 -events ev.jsonl -metrics m.prom -explain
//	eclsim -fig 13 -qtrace trace.json -qtrace-sample 8
//
// -events writes the decision-event stream as JSONL, -metrics writes the
// post-run counters in Prometheus text format, and -explain prints an
// ASCII report of per-socket zone residency, safety-valve activations,
// and applied configurations. -qtrace samples per-query latency phase
// spans (route/wake/queue/exec) plus control-loop spans and writes them
// as Chrome/Perfetto trace-event JSON — open the file at ui.perfetto.dev
// — and prints the per-phase latency breakdown table. They apply to
// -fig 13, -fig 14, and custom runs (where the ECL governor's pass is
// the one observed).
//
// -eattr attaches the energy-attribution meter and prints its post-run
// report: the class split of every joule the run integrated (queries,
// control, idle/residual — shares sum to 100% by construction), the
// per-query energy quantiles, per-workload-class joules, and the energy
// saved versus a frozen always-max baseline, with the reconfiguration
// audit ledger behind it. -eattr-out additionally writes the meter's
// JSONL export (spans, ledger, class stats) to a file:
//
//	eclsim -fig 13 -eattr
//	eclsim -workload tatp-indexed -load twitter -eattr -eattr-out eattr.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ecldb/internal/bench"
	"ecldb/internal/ecl"
	"ecldb/internal/hw"
	"ecldb/internal/loadprofile"
	"ecldb/internal/obs"
	"ecldb/internal/obs/energyattr"
	"ecldb/internal/obs/trace"
	"ecldb/internal/sim"
	"ecldb/internal/units"
	"ecldb/internal/workload"
)

// obsOut bundles the observability flags: where to export the decision
// event stream, metrics, and query trace, and whether to print the
// explain report.
type obsOut struct {
	events       string
	metrics      string
	explain      bool
	qtrace       string
	qtraceSample int
	eattr        bool
	eattrOut     string
}

func (o obsOut) wanted() bool {
	return o.events != "" || o.metrics != "" || o.explain || o.qtrace != "" ||
		o.eattr || o.eattrOut != ""
}

// observer creates the observer when any observability output is wanted,
// with the query tracer attached when -qtrace asks for one and the
// energy-attribution meter when -eattr (or -eattr-out) asks for it.
func (o obsOut) observer() *obs.Observer {
	if !o.wanted() {
		return nil
	}
	ob := obs.New(0)
	if o.qtrace != "" {
		ob.Trace = trace.New(o.qtraceSample)
	}
	if o.eattr || o.eattrOut != "" {
		ob.Energy = energyattr.New(hw.HaswellEP().Sockets)
	}
	return ob
}

// flush writes the requested exports after the observed run.
func (o obsOut) flush(ob *obs.Observer) error {
	if ob == nil {
		return nil
	}
	if o.events != "" {
		f, err := os.Create(o.events)
		if err != nil {
			return err
		}
		if err := ob.Log.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("decision events written to %s (%d events)\n", o.events, ob.Log.Len())
	}
	if o.metrics != "" {
		f, err := os.Create(o.metrics)
		if err != nil {
			return err
		}
		if err := ob.Metrics.WriteProm(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics exposition written to %s\n", o.metrics)
	}
	if o.qtrace != "" {
		f, err := os.Create(o.qtrace)
		if err != nil {
			return err
		}
		if err := ob.Trace.WritePerfetto(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("query trace written to %s (%d spans; open in ui.perfetto.dev)\n",
			o.qtrace, len(ob.Trace.Queries()))
		if !o.explain {
			// -explain prints the breakdown as part of the full report.
			fmt.Println()
			fmt.Print(ob.Trace.Report())
		}
	}
	if o.eattrOut != "" {
		f, err := os.Create(o.eattrOut)
		if err != nil {
			return err
		}
		if err := ob.Energy.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("energy attribution written to %s (%d spans, %d ledger records)\n",
			o.eattrOut, len(ob.Energy.Spans()), len(ob.Energy.Ledger()))
	}
	if o.eattr || o.eattrOut != "" {
		fmt.Println()
		fmt.Print(ob.Energy.Report())
	}
	if o.explain {
		fmt.Println()
		fmt.Print(ob.Explain())
	}
	return nil
}

func main() {
	fig := flag.Int("fig", 0, "figure number (11, 13, 14, 15/16)")
	table := flag.Int("table", 0, "table number (1)")
	wlName := flag.String("workload", "", "custom run: workload name")
	loadName := flag.String("load", "spike", "custom run: load profile (spike, twitter, constant, idleburst, replay)")
	traceFile := flag.String("trace", "", "custom run with -load replay: CSV trace with t_seconds,qps columns")
	level := flag.Float64("level", 0.5, "custom run: constant-load level relative to capacity")
	duration := flag.Duration("duration", 2*time.Minute, "custom run: profile duration")
	seed := flag.Int64("seed", 42, "random seed")
	csvPrefix := flag.String("csv", "", "custom run: write per-governor trace CSVs to <prefix>-<governor>.csv")
	capW := flag.Float64("cap", 0, "custom run: per-socket power cap in W for the ECL (0 = none)")
	parallel := flag.Int("parallel", 0, "worker goroutines for multi-run sweeps (<1 = GOMAXPROCS); results are identical at any setting")
	nomemo := flag.Bool("nomemo", false, "take the naive reference step path (no epoch-keyed kernel cache, no macro-stepping); results are identical, just slower")
	nobatch := flag.Bool("nobatch", false, "per-quantum reference float grouping (no closed-form stretch integration); integer observables are identical, float energies differ only in summation grouping (DESIGN.md §16)")
	runLen := flag.Duration("len", 0, "override the experiment length for -fig 13/14/15 and -table 1 (0 = the figure's default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	var oo obsOut
	flag.StringVar(&oo.events, "events", "", "write the ECL decision-event stream as JSONL to this file")
	flag.StringVar(&oo.metrics, "metrics", "", "write the post-run metrics in Prometheus text format to this file")
	flag.BoolVar(&oo.explain, "explain", false, "print the post-run control-plane explain report")
	flag.StringVar(&oo.qtrace, "qtrace", "", "write sampled query spans as Perfetto trace-event JSON to this file (open at ui.perfetto.dev)")
	flag.IntVar(&oo.qtraceSample, "qtrace-sample", 16, "trace one query span per N admissions (1 = every query)")
	flag.BoolVar(&oo.eattr, "eattr", false, "attach the energy-attribution meter and print its post-run breakdown report")
	flag.StringVar(&oo.eattrOut, "eattr-out", "", "write the energy-attribution export (spans, ledger, class stats) as JSONL to this file; implies -eattr")
	flag.Parse()
	bench.SetParallelism(*parallel)
	sim.SetNaiveStep(*nomemo)
	sim.SetBatchOff(*nobatch)
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	exitOn(err)
	defer stopProfiles()

	switch {
	case *table == 1:
		warnNoObs(oo)
		r, err := bench.Table1Sized(orDefault(*runLen, 2*time.Minute))
		exitOn(err)
		fmt.Println(r.Render())
	case *fig == 11:
		warnNoObs(oo)
		r, err := bench.Figure11()
		exitOn(err)
		fmt.Println(r.Render())
	case *fig == 13:
		ob := oo.observer()
		r, err := bench.Figure13Observed(orDefault(*runLen, 3*time.Minute), ob)
		exitOn(err)
		fmt.Println(r.Render())
		exitOn(oo.flush(ob))
	case *fig == 14:
		ob := oo.observer()
		r, err := bench.Figure14Observed(orDefault(*runLen, 3*time.Minute), ob)
		exitOn(err)
		fmt.Println(r.Render())
		exitOn(oo.flush(ob))
	case *fig == 15, *fig == 16:
		warnNoObs(oo)
		d := orDefault(*runLen, 160*time.Second)
		r, err := bench.FigureAdaptationSized(d/4, d)
		exitOn(err)
		fmt.Println(r.Render())
	case *wlName != "":
		exitOn(customRun(*wlName, *loadName, *traceFile, *level, *duration, *seed, *csvPrefix, *capW, oo))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// orDefault substitutes the figure's default length when -len is unset.
func orDefault(v, def time.Duration) time.Duration {
	if v > 0 {
		return v
	}
	return def
}

func customRun(wlName, loadName, traceFile string, level float64, duration time.Duration, seed int64, csvPrefix string, capW float64, oo obsOut) error {
	wl := workload.ByName(wlName)
	if wl == nil {
		return fmt.Errorf("unknown workload %q", wlName)
	}
	capacity, err := bench.MeasureCapacity(wl, seed)
	if err != nil {
		return err
	}
	var load loadprofile.Profile
	switch loadName {
	case "spike":
		load = loadprofile.Spike{PeakQps: capacity * 1.15, Len: duration}
	case "twitter":
		load = loadprofile.Twitter{BaseQps: capacity * 0.8, Len: duration}
	case "constant":
		load = loadprofile.Constant{Qps: capacity * level, Len: duration}
	case "idleburst":
		// Two short bursts around a long zero plateau: the shape of
		// BenchmarkIdleHeavyRun, and the one that exercises the
		// closed-form stretch integration (DESIGN.md §16) hardest.
		levels := make([]float64, 30)
		levels[0] = capacity * level
		levels[len(levels)-1] = capacity * level
		load = loadprofile.Step{Levels: levels, StepLen: duration / 30}
	case "replay":
		if traceFile == "" {
			return fmt.Errorf("-load replay needs -trace <csv>")
		}
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		rp, err := loadprofile.LoadReplayCSV(traceFile, f, duration)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("replaying %s compressed %.0fx\n", traceFile, rp.Compression())
		load = rp
	default:
		return fmt.Errorf("unknown load profile %q", loadName)
	}
	fmt.Printf("workload %s, capacity %.0f qps, load %s for %v\n", wlName, capacity, loadName, duration)
	var baseJ units.Joule
	for _, gov := range []sim.Governor{sim.GovernorBaseline, sim.GovernorECL} {
		opts := sim.Options{
			Workload: workload.ByName(wlName),
			Load:     load,
			Governor: gov,
			Prewarm:  gov == sim.GovernorECL,
			Seed:     seed,
		}
		if gov == sim.GovernorECL && capW > 0 {
			opts.ECL = ecl.DefaultOptions()
			opts.ECL.PowerCapW = units.WattsOf(capW)
		}
		// Observe the ECL run only: the baseline has no control plane
		// worth explaining, and a single observer must not span runs.
		var ob *obs.Observer
		if gov == sim.GovernorECL {
			ob = oo.observer()
			opts.Obs = ob
		}
		res, err := sim.Run(opts)
		if err != nil {
			return err
		}
		if csvPrefix != "" {
			path := fmt.Sprintf("%s-%s.csv", csvPrefix, gov)
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := res.Rec.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("trace written to %s\n", path)
		}
		fmt.Printf("%-9s energy %8.0f J  PSU %8.0f J  completed %9d  avg latency %12v  violations %5.1f%%",
			gov, res.EnergyJ, res.PSUEnergyJ, res.Completed, res.AvgLatency, res.ViolationFrac*100)
		if gov == sim.GovernorBaseline {
			baseJ = res.EnergyJ
			fmt.Println()
		} else {
			fmt.Printf("  savings %5.1f%%  most applied %s\n", (1-res.EnergyJ.Div(baseJ))*100, res.MostApplied)
			if err := oo.flush(ob); err != nil {
				return err
			}
		}
	}
	return nil
}

// warnNoObs notes that the observability flags only cover the runs that
// exercise the ECL with its base interval (-fig 13, -fig 14, custom).
func warnNoObs(oo obsOut) {
	if oo.wanted() {
		fmt.Fprintln(os.Stderr, "eclsim: -events/-metrics/-explain/-qtrace/-eattr apply to -fig 13, -fig 14, and custom runs only; ignoring")
	}
}

// stopProfilesFn finalizes any requested profiles; exitOn invokes it so
// profiles survive error exits too (os.Exit skips deferred calls).
var stopProfilesFn = func() {}

// startProfiles starts a CPU profile and arranges a heap profile at
// shutdown, returning the finalizer (also stored for exitOn).
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	done := false
	stopProfilesFn = func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "eclsim:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "eclsim:", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "heap profile written to %s\n", memPath)
		}
	}
	return stopProfilesFn, nil
}

func exitOn(err error) {
	if err != nil {
		stopProfilesFn()
		fmt.Fprintln(os.Stderr, "eclsim:", err)
		os.Exit(1)
	}
}
