// Command eclsim runs the paper's end-to-end evaluation experiments
// (Figures 11, 13-16 and Table 1) or a custom simulation of the elastic
// data-oriented DBMS under a chosen governor, workload, and load profile.
//
// Usage:
//
//	eclsim -fig 13               # spike-profile experiment
//	eclsim -fig 14               # twitter-profile experiment
//	eclsim -fig 15               # adaptation experiment (also figure 16)
//	eclsim -table 1              # full Table 1 sweep
//	eclsim -workload tatp-indexed -load spike -duration 2m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ecldb/internal/bench"
	"ecldb/internal/ecl"
	"ecldb/internal/loadprofile"
	"ecldb/internal/sim"
	"ecldb/internal/workload"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (11, 13, 14, 15/16)")
	table := flag.Int("table", 0, "table number (1)")
	wlName := flag.String("workload", "", "custom run: workload name")
	loadName := flag.String("load", "spike", "custom run: load profile (spike, twitter, constant, replay)")
	traceFile := flag.String("trace", "", "custom run with -load replay: CSV trace with t_seconds,qps columns")
	level := flag.Float64("level", 0.5, "custom run: constant-load level relative to capacity")
	duration := flag.Duration("duration", 2*time.Minute, "custom run: profile duration")
	seed := flag.Int64("seed", 42, "random seed")
	csvPrefix := flag.String("csv", "", "custom run: write per-governor trace CSVs to <prefix>-<governor>.csv")
	capW := flag.Float64("cap", 0, "custom run: per-socket power cap in W for the ECL (0 = none)")
	flag.Parse()

	switch {
	case *table == 1:
		r, err := bench.Table1()
		exitOn(err)
		fmt.Println(r.Render())
	case *fig == 11:
		r, err := bench.Figure11()
		exitOn(err)
		fmt.Println(r.Render())
	case *fig == 13:
		r, err := bench.Figure13()
		exitOn(err)
		fmt.Println(r.Render())
	case *fig == 14:
		r, err := bench.Figure14()
		exitOn(err)
		fmt.Println(r.Render())
	case *fig == 15, *fig == 16:
		r, err := bench.FigureAdaptation()
		exitOn(err)
		fmt.Println(r.Render())
	case *wlName != "":
		exitOn(customRun(*wlName, *loadName, *traceFile, *level, *duration, *seed, *csvPrefix, *capW))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func customRun(wlName, loadName, traceFile string, level float64, duration time.Duration, seed int64, csvPrefix string, capW float64) error {
	wl := workload.ByName(wlName)
	if wl == nil {
		return fmt.Errorf("unknown workload %q", wlName)
	}
	capacity, err := sim.MeasureCapacity(wl, seed)
	if err != nil {
		return err
	}
	var load loadprofile.Profile
	switch loadName {
	case "spike":
		load = loadprofile.Spike{PeakQps: capacity * 1.15, Len: duration}
	case "twitter":
		load = loadprofile.Twitter{BaseQps: capacity * 0.8, Len: duration}
	case "constant":
		load = loadprofile.Constant{Qps: capacity * level, Len: duration}
	case "replay":
		if traceFile == "" {
			return fmt.Errorf("-load replay needs -trace <csv>")
		}
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		rp, err := loadprofile.LoadReplayCSV(traceFile, f, duration)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("replaying %s compressed %.0fx\n", traceFile, rp.Compression())
		load = rp
	default:
		return fmt.Errorf("unknown load profile %q", loadName)
	}
	fmt.Printf("workload %s, capacity %.0f qps, load %s for %v\n", wlName, capacity, loadName, duration)
	var baseJ float64
	for _, gov := range []sim.Governor{sim.GovernorBaseline, sim.GovernorECL} {
		opts := sim.Options{
			Workload: workload.ByName(wlName),
			Load:     load,
			Governor: gov,
			Prewarm:  gov == sim.GovernorECL,
			Seed:     seed,
		}
		if gov == sim.GovernorECL && capW > 0 {
			opts.ECL = ecl.DefaultOptions()
			opts.ECL.PowerCapW = capW
		}
		res, err := sim.Run(opts)
		if err != nil {
			return err
		}
		if csvPrefix != "" {
			path := fmt.Sprintf("%s-%s.csv", csvPrefix, gov)
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := res.Rec.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("trace written to %s\n", path)
		}
		fmt.Printf("%-9s energy %8.0f J  PSU %8.0f J  completed %9d  avg latency %12v  violations %5.1f%%",
			gov, res.EnergyJ, res.PSUEnergyJ, res.Completed, res.AvgLatency, res.ViolationFrac*100)
		if gov == sim.GovernorBaseline {
			baseJ = res.EnergyJ
			fmt.Println()
		} else {
			fmt.Printf("  savings %5.1f%%  most applied %s\n", (1-res.EnergyJ/baseJ)*100, res.MostApplied)
		}
	}
	return nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "eclsim:", err)
		os.Exit(1)
	}
}
