// Command calibrate runs the ECL's startup meta-calibration experiment
// (the paper's Figure 12): it detects the smallest trustworthy RAPL
// measurement window and configuration-apply settle time on the simulated
// machine and prints the deviation curves.
package main

import (
	"fmt"

	"ecldb/internal/bench"
)

func main() {
	fmt.Println(bench.Figure12().Render())
}
