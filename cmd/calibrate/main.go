// Command calibrate runs the ECL's startup meta-calibration experiment
// (the paper's Figure 12): it detects the smallest trustworthy RAPL
// measurement window and configuration-apply settle time on the simulated
// machine and prints the deviation curves.
package main

import (
	"flag"
	"fmt"

	"ecldb/internal/bench"
)

func main() {
	// Calibration itself probes one machine sequentially; the flag is
	// accepted for symmetry with eclsim/profilegen so scripts can pass a
	// uniform -parallel to every binary.
	parallel := flag.Int("parallel", 0, "worker goroutines for multi-run sweeps (<1 = GOMAXPROCS); results are identical at any setting")
	flag.Parse()
	bench.SetParallelism(*parallel)
	fmt.Println(bench.Figure12().Render())
}
