package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"text/tabwriter"
)

func writeSnapshot(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldSnap = `{
  "date": "2026-08-07",
  "go": "go1.24.0",
  "benchtime": "100ms",
  "benchmarks": [
    {"name": "BenchmarkA", "iterations": 100, "ns_per_op": 1000, "bytes_per_op": 64, "allocs_per_op": 2},
    {"name": "BenchmarkB", "iterations": 100, "ns_per_op": 2000},
    {"name": "BenchmarkGone", "iterations": 100, "ns_per_op": 5}
  ]
}`

const newSnap = `{
  "date": "2026-08-08",
  "go": "go1.24.0",
  "benchtime": "100ms",
  "benchmarks": [
    {"name": "BenchmarkA", "iterations": 100, "ns_per_op": 1500, "bytes_per_op": 64, "allocs_per_op": 0},
    {"name": "BenchmarkB", "iterations": 100, "ns_per_op": 1000},
    {"name": "BenchmarkNew", "iterations": 100, "ns_per_op": 7}
  ]
}`

// TestDiffTable pins the delta computation: a regression shows its
// percentage and feeds the worst-regression return, an improvement is
// negative, added and removed benchmarks are labeled, and an allocs/op
// transition is spelled out.
func TestDiffTable(t *testing.T) {
	dir := t.TempDir()
	oldS, err := load(writeSnapshot(t, dir, "old.json", oldSnap))
	if err != nil {
		t.Fatal(err)
	}
	newS, err := load(writeSnapshot(t, dir, "new.json", newSnap))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 0, 4, 2, ' ', 0)
	worst := diff(w, oldS, newS)
	w.Flush()
	out := buf.String()

	if worst != 50 {
		t.Errorf("worst regression = %.1f, want 50 (BenchmarkA 1000 -> 1500)", worst)
	}
	for _, want := range []string{"+50.0%", "-50.0%", "2 -> 0", "new", "removed"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestDiffBenchtimeChange asserts that snapshots taken under different
// benchtimes do not report regressions: single-shot and amortized
// numbers are not comparable, so the worst-regression signal must stay
// quiet and the rows must carry the annotation.
func TestDiffBenchtimeChange(t *testing.T) {
	dir := t.TempDir()
	oldS, err := load(writeSnapshot(t, dir, "old.json", strings.Replace(oldSnap, `"100ms"`, `"1x"`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	newS, err := load(writeSnapshot(t, dir, "new.json", newSnap))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 0, 4, 2, ' ', 0)
	worst := diff(w, oldS, newS)
	w.Flush()
	if worst != 0 {
		t.Errorf("worst regression = %.1f across a benchtime change, want 0", worst)
	}
	if !strings.Contains(buf.String(), "benchtime changed") {
		t.Errorf("table missing the benchtime-change annotation:\n%s", buf.String())
	}
}

// TestPickNewestTwo asserts the date-stamped names sort chronologically
// and the newest two win, and that fewer than two snapshots is a clean
// nothing-to-diff.
func TestPickNewestTwo(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, dir, "BENCH_2026-07-30.json", oldSnap)
	older := writeSnapshot(t, dir, "BENCH_2026-08-07.json", oldSnap)
	newer := writeSnapshot(t, dir, "BENCH_2026-08-08.json", newSnap)
	gotOld, gotNew, err := pick(dir)
	if err != nil {
		t.Fatal(err)
	}
	if gotOld != older || gotNew != newer {
		t.Errorf("pick = (%s, %s), want (%s, %s)", gotOld, gotNew, older, newer)
	}

	solo := t.TempDir()
	writeSnapshot(t, solo, "BENCH_2026-08-08.json", newSnap)
	gotOld, gotNew, err = pick(solo)
	if err != nil {
		t.Fatal(err)
	}
	if gotOld != "" || gotNew != "" {
		t.Errorf("pick with one snapshot = (%s, %s), want empty", gotOld, gotNew)
	}
}
