// benchdiff compares the two newest benchmark snapshots written by
// scripts/bench.sh (BENCH_<date>.json) and prints a per-benchmark delta
// table: ns/op, and — when both snapshots carry them — bytes/op and
// allocs/op. It is a trend-spotting aid, not a gate: CI runs it
// non-blocking after the snapshot step, so a noisy runner can never fail
// the build, but a regression is visible in the log the day it lands.
//
// Usage:
//
//	benchdiff [-dir .] [-fail-over pct] [old.json new.json]
//
// With explicit file arguments the two snapshots are compared in the
// given order. Without them, the tool globs dir for BENCH_*.json and
// compares the lexically-newest two (the date-stamped names sort
// chronologically). Fewer than two snapshots is a clean no-op — the
// first CI run after a snapshot-schema change has nothing to diff.
//
// -fail-over N exits nonzero when any benchmark's ns/op regressed by
// more than N percent; the default 0 never fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"
)

type snapshot struct {
	Date       string      `json:"date"`
	Go         string      `json:"go"`
	Commit     string      `json:"commit"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []benchmark `json:"benchmarks"`
}

// label names a snapshot for the header line: its date plus, when the
// snapshot records one (bench.sh stamps git rev-parse since PR 9), the
// commit it was taken at.
func (s *snapshot) label() string {
	if s.Commit == "" {
		return s.Date
	}
	return s.Date + " @" + s.Commit
}

type benchmark struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

func load(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// pick returns the lexically-newest two BENCH_*.json files in dir as
// (older, newer). The date-stamped names sort chronologically.
func pick(dir string) (older, newer string, err error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", "", err
	}
	if len(matches) < 2 {
		return "", "", nil
	}
	sort.Strings(matches)
	return matches[len(matches)-2], matches[len(matches)-1], nil
}

// pct returns the relative change from old to new in percent.
func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

// diff renders the comparison table and returns the worst ns/op
// regression in percent (0 when nothing regressed).
func diff(w *tabwriter.Writer, oldS, newS *snapshot) float64 {
	oldBy := make(map[string]benchmark, len(oldS.Benchmarks))
	for _, b := range oldS.Benchmarks {
		oldBy[b.Name] = b
	}
	sameTime := oldS.Benchtime == newS.Benchtime
	fmt.Fprintf(w, "benchmark\told ns/op\tnew ns/op\tdelta\tallocs/op\n")
	worst := 0.0
	for _, nb := range newS.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%s\t-\t%.0f\tnew\t%s\n", nb.Name, nb.NsPerOp, allocsCell(nil, nb.AllocsPerOp))
			continue
		}
		delete(oldBy, nb.Name)
		d := pct(ob.NsPerOp, nb.NsPerOp)
		note := ""
		if !sameTime {
			// A benchtime change reshapes single-shot vs amortized
			// numbers; flag the delta as not comparable rather than
			// reporting a phantom regression.
			note = " (benchtime changed)"
		} else if d > worst {
			worst = d
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%+.1f%%%s\t%s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, d, note, allocsCell(ob.AllocsPerOp, nb.AllocsPerOp))
	}
	gone := make([]string, 0, len(oldBy))
	for name := range oldBy {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "%s\t%.0f\t-\tremoved\t\n", name, oldBy[name].NsPerOp)
	}
	return worst
}

// allocsCell formats the allocs/op transition for one benchmark row.
func allocsCell(oldA, newA *float64) string {
	switch {
	case oldA == nil && newA == nil:
		return ""
	case oldA == nil:
		return fmt.Sprintf("%.0f", *newA)
	case newA == nil:
		return fmt.Sprintf("%.0f -> ?", *oldA)
	case *oldA == *newA:
		return fmt.Sprintf("%.0f", *newA)
	default:
		return fmt.Sprintf("%.0f -> %.0f", *oldA, *newA)
	}
}

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_*.json snapshots")
	failOver := flag.Float64("fail-over", 0, "exit nonzero when any ns/op regression exceeds this percentage (0 never fails)")
	flag.Parse()

	var oldPath, newPath string
	switch flag.NArg() {
	case 0:
		var err error
		oldPath, newPath, err = pick(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if oldPath == "" {
			fmt.Println("benchdiff: fewer than two BENCH_*.json snapshots; nothing to diff")
			return
		}
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-dir .] [-fail-over pct] [old.json new.json]")
		os.Exit(2)
	}

	oldS, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newS, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	fmt.Printf("benchdiff: %s (%s) -> %s (%s)\n", oldPath, oldS.label(), newPath, newS.label())
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	worst := diff(w, oldS, newS)
	w.Flush()
	if *failOver > 0 && worst > *failOver {
		fmt.Fprintf(os.Stderr, "benchdiff: worst regression %.1f%% exceeds -fail-over %.1f%%\n", worst, *failOver)
		os.Exit(1)
	}
}
