// Command hwbench runs the paper's Section 2 hardware analysis (Figures
// 3-8) on the simulated Haswell-EP server and prints the resulting tables.
//
// Usage:
//
//	hwbench            # all figures
//	hwbench -fig 4     # one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"ecldb/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (3-8); 0 runs all")
	flag.Parse()

	runners := map[int]func() (string, error){
		3: func() (string, error) { return bench.Figure3().Render(), nil },
		4: func() (string, error) { return bench.Figure4().Render(), nil },
		5: func() (string, error) { return bench.Figure5().Render(), nil },
		6: func() (string, error) { return bench.Figure6().Render(), nil },
		7: func() (string, error) { return bench.Figure7().Render(), nil },
		8: func() (string, error) { return bench.Figure8().Render(), nil },
	}
	figs := []int{3, 4, 5, 6, 7, 8}
	if *fig != 0 {
		if _, ok := runners[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "hwbench: unknown figure %d (want 3-8)\n", *fig)
			os.Exit(2)
		}
		figs = []int{*fig}
	}
	for _, f := range figs {
		out, err := runners[f]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hwbench: figure %d: %v\n", f, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}
