// Command semdiff compares two regenerated artifact trees (or two single
// files) with the re-lock rules of DESIGN.md §16: non-numeric text and
// integer-rendered observables must match byte for byte; float-rendered
// values must agree within a tight relative epsilon or one unit in their
// last printed decimal place. scripts/relock.sh drives it over the old-
// and new-grouping regenerations of every figure and table.
//
// Usage:
//
//	semdiff [-eps 1e-9] [-abs 1e-12] old-dir new-dir
//	semdiff [-eps 1e-9] [-abs 1e-12] old-file new-file
//
// The exit status is 0 when every pair agrees semantically, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"ecldb/internal/relock"
)

func main() {
	eps := flag.Float64("eps", 1e-9, "maximum relative difference between float-rendered values")
	abs := flag.Float64("abs", 1e-12, "absolute difference floor below which floats always agree")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: semdiff [-eps 1e-9] [-abs 1e-12] <old> <new>")
		os.Exit(2)
	}
	opts := relock.Options{RelEps: *eps, AbsFloor: *abs}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)

	oldInfo, err := os.Stat(oldPath)
	exitOn(err)
	newInfo, err := os.Stat(newPath)
	exitOn(err)
	if oldInfo.IsDir() != newInfo.IsDir() {
		fmt.Fprintln(os.Stderr, "semdiff: one argument is a directory and the other a file")
		os.Exit(2)
	}

	var reports []relock.FileReport
	if oldInfo.IsDir() {
		reports, err = relock.CompareTrees(oldPath, newPath, opts)
		exitOn(err)
	} else {
		r, err := relock.CompareFiles(oldPath, newPath, opts)
		exitOn(err)
		reports = []relock.FileReport{r}
	}
	relock.Render(os.Stdout, reports)
	if !relock.AllOK(reports) {
		os.Exit(1)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "semdiff:", err)
		os.Exit(1)
	}
}
