// Powercap: run the ECL at high load under a shrinking RAPL-style
// per-socket power budget and watch the power/latency trade-off. The cap
// is enforced through the energy profile — the loop only applies
// configurations it has measured at or below the budget, keeping its
// efficiency ranking instead of being throttled blindly — and it outranks
// the latency limit.
package main

import (
	"fmt"
	"log"
	"time"

	"ecldb"
)

func main() {
	load := ecldb.LoadSpec{Kind: "constant", Level: 0.85, Duration: 40 * time.Second}
	run := func(capW float64) *ecldb.Result {
		res, err := ecldb.Run(ecldb.RunConfig{
			Workload:  "kv-nonindexed",
			Load:      load,
			Governor:  ecldb.GovernorECL,
			PowerCapW: capW,
			Seed:      7,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	uncapped := run(0)
	wallSec := load.Duration.Seconds()
	perSocketW := uncapped.EnergyJ / wallSec / 2
	fmt.Printf("%-14s %10s %12s %10s  %s\n", "cap (W/socket)", "avg W", "avg latency", "violations", "most applied")
	fmt.Printf("%-14s %10.1f %12v %9.1f%%  %s\n",
		"none", uncapped.EnergyJ/wallSec, uncapped.AvgLatency.Round(time.Millisecond),
		uncapped.ViolationFrac*100, uncapped.MostApplied)

	for _, frac := range []float64{0.85, 0.65, 0.45} {
		capW := perSocketW * frac
		res := run(capW)
		fmt.Printf("%-14.0f %10.1f %12v %9.1f%%  %s\n",
			capW, res.EnergyJ/wallSec, res.AvgLatency.Round(time.Millisecond),
			res.ViolationFrac*100, res.MostApplied)
	}
	fmt.Println("\nTighter budgets buy watts with latency: the cap is a hard")
	fmt.Println("constraint, the latency limit a soft one.")
}
