// Twitter replay: replay a bursty two-hour real-world load shape
// compressed into two minutes (the paper replays 2 h in 3 minutes) under
// baseline and ECL, printing the energy proportionality the ECL achieves.
package main

import (
	"fmt"
	"log"
	"time"

	"ecldb"
)

func main() {
	load := ecldb.LoadSpec{Kind: "twitter", Level: 0.8, Duration: 2 * time.Minute}

	type outcome struct {
		name string
		res  *ecldb.Result
	}
	var outs []outcome
	for _, gov := range []ecldb.Governor{ecldb.GovernorBaseline, ecldb.GovernorECL} {
		res, err := ecldb.Run(ecldb.RunConfig{
			Workload: "tatp-indexed",
			Load:     load,
			Governor: gov,
			Seed:     4,
		})
		if err != nil {
			log.Fatal(err)
		}
		outs = append(outs, outcome{gov.String(), res})
	}

	// Print both power timelines side by side.
	_, qs := outs[0].res.Series("load_qps")
	bt, bp := outs[0].res.Series("power_rapl_w")
	_, ep := outs[1].res.Series("power_rapl_w")
	fmt.Println("   t      load        baseline      ECL")
	for i := range bt {
		if i%8 != 0 || i >= len(ep) {
			continue
		}
		fmt.Printf("%5.0fs  %7.0f qps  %7.1f W  %7.1f W\n", bt[i].Seconds(), qs[i], bp[i], ep[i])
	}
	fmt.Printf("\nenergy: baseline %.0f J, ECL %.0f J -> savings %.1f%% (violations %.2f%%)\n",
		outs[0].res.EnergyJ, outs[1].res.EnergyJ,
		(1-outs[1].res.EnergyJ/outs[0].res.EnergyJ)*100, outs[1].res.ViolationFrac*100)
}
