// Quickstart: run the key-value benchmark at half load under the
// race-to-idle baseline and under the Energy-Control Loop, and compare
// energy, latency, and the configuration the ECL converged to.
package main

import (
	"fmt"
	"log"
	"time"

	"ecldb"
)

func main() {
	fmt.Println("Available workloads:", ecldb.Workloads())

	load := ecldb.LoadSpec{Kind: "constant", Level: 0.5, Duration: time.Minute}

	base, err := ecldb.Run(ecldb.RunConfig{
		Workload: "kv-nonindexed",
		Load:     load,
		Governor: ecldb.GovernorBaseline,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %.0f J, %d queries, avg latency %v\n",
		base.EnergyJ, base.Completed, base.AvgLatency)

	eclRes, err := ecldb.Run(ecldb.RunConfig{
		Workload: "kv-nonindexed",
		Load:     load,
		Governor: ecldb.GovernorECL,
		Observe:  true, // record the control plane for the explain report
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ECL:      %.0f J, %d queries, avg latency %v, violations %.2f%%\n",
		eclRes.EnergyJ, eclRes.Completed, eclRes.AvgLatency, eclRes.ViolationFrac*100)
	fmt.Printf("ECL converged to configuration %s\n", eclRes.MostApplied)
	fmt.Printf("energy savings: %.1f%%\n", (1-eclRes.EnergyJ/base.EnergyJ)*100)

	// The observed run carries a decision-event census and a post-run
	// explain report reconstructing what the control loops did.
	fmt.Printf("\ncontrol plane: %d zone transitions, %d safety-valve activations, %d configs applied\n",
		eclRes.Events["ZoneTransition"], eclRes.Events["SafetyValve"], eclRes.Events["ConfigApply"])
	fmt.Println()
	fmt.Print(eclRes.Explain)
}
