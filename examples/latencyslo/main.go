// Latency SLO: drive the system through a spike load profile that peaks
// above its capacity, with the ECL obeying a 100 ms average-latency limit
// as a soft constraint. The printed timeline shows power tracking the load
// (energy proportionality) and the latency staying under the limit except
// during the genuine overload phase.
package main

import (
	"fmt"
	"log"
	"time"

	"ecldb"
)

func main() {
	res, err := ecldb.Run(ecldb.RunConfig{
		Workload:     "kv-nonindexed",
		Load:         ecldb.LoadSpec{Kind: "spike", Level: 1.15, Duration: 2 * time.Minute},
		Governor:     ecldb.GovernorECL,
		LatencyLimit: 100 * time.Millisecond,
		Seed:         2,
	})
	if err != nil {
		log.Fatal(err)
	}

	lt, lv := res.Series("latency_avg_ms")
	_, pw := res.Series("power_rapl_w")
	_, qs := res.Series("load_qps")
	fmt.Println("   t      load      power   avg latency")
	for i := range lt {
		if i%10 != 0 {
			continue
		}
		marker := ""
		if lv[i] > 100 {
			marker = "  <- over limit"
		}
		fmt.Printf("%5.0fs  %7.0f qps  %6.1f W  %8.1f ms%s\n",
			lt[i].Seconds(), qs[i], pw[i], lv[i], marker)
	}
	fmt.Printf("\ncapacity %.0f qps, violations %.1f%% (overload phase only), p99 %v\n",
		res.CapacityQps, res.ViolationFrac*100, res.P99Latency)
}
