// Workload switch: reproduce the paper's Section 6.3 experiment as a
// demo. The indexed key-value workload (memory-latency-bound) switches to
// the non-indexed one (memory-bandwidth-bound) mid-run — a major workload
// change that flips the shape of the energy profile. The three profile
// maintenance strategies react differently: without adaptation the ECL
// keeps applying configurations that are wrong for the new workload.
package main

import (
	"fmt"
	"log"
	"time"

	"ecldb"
)

func main() {
	fmt.Println("indexed -> non-indexed key-value switch at t=30s, 50% load")
	fmt.Println()
	for _, maintenance := range []string{"static", "online", "multiplexed"} {
		res, err := ecldb.Run(ecldb.RunConfig{
			Workload:    "kv-indexed",
			SwitchTo:    "kv-nonindexed",
			SwitchAt:    30 * time.Second,
			Load:        ecldb.LoadSpec{Kind: "constant", Level: 0.5, Duration: 90 * time.Second},
			Governor:    ecldb.GovernorECL,
			Maintenance: maintenance,
			Seed:        3,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Integrate power after the switch.
		ts, pw := res.Series("power_rapl_w")
		post := 0.0
		for i := range ts {
			if ts[i] < 30*time.Second || i+1 >= len(ts) {
				continue
			}
			post += pw[i] * (ts[i+1] - ts[i]).Seconds()
		}
		fmt.Printf("%-12s total %7.0f J   post-switch %7.0f J   violations %5.2f%%\n",
			maintenance, res.EnergyJ, post, res.ViolationFrac*100)
	}
	fmt.Println("\nwithout profile maintenance (static) the ECL wastes energy on the new workload;")
	fmt.Println("online adaptation fixes the applied configurations, multiplexed re-measures the rest.")
}
