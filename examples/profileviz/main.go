// Profile visualization: render a workload's energy profile as an ASCII
// scatter plot in the style of the paper's Figures 9/10 — performance
// level on the x-axis, energy efficiency on the y-axis, the skyline
// marked. Compare two opposite profiles to see why the ECL must maintain
// them per workload:
//
//	go run ./examples/profileviz kv-nonindexed
//	go run ./examples/profileviz atomic-contention
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"ecldb"
)

const (
	plotW = 78
	plotH = 24
)

func main() {
	name := "kv-nonindexed"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	points, err := ecldb.Profile(name)
	if err != nil {
		log.Fatal(err)
	}

	grid := make([][]rune, plotH)
	for y := range grid {
		grid[y] = []rune(strings.Repeat(" ", plotW))
	}
	put := func(px, py int, c rune) {
		if px >= 0 && px < plotW && py >= 0 && py < plotH {
			grid[py][px] = c
		}
	}
	var opt ecldb.ProfilePoint
	for _, p := range points {
		x := int(p.PerfLevel * float64(plotW-1))
		y := plotH - 1 - int(p.EffLevel*float64(plotH-1))
		c := '.'
		if p.OnSkyline {
			c = 'o'
		}
		if p.Zone == "optimal" {
			c = '*'
			opt = p
		}
		put(x, y, c)
	}

	fmt.Printf("energy profile: %s (%d configurations)\n", name, len(points))
	fmt.Println("efficiency ^   (. config, o skyline, * optimal)")
	for _, row := range grid {
		fmt.Printf("|%s|\n", string(row))
	}
	fmt.Printf("+%s> performance level\n", strings.Repeat("-", plotW))
	fmt.Printf("\noptimal zone: %s (perf %.2f, efficiency 1.00)\n", opt.Config, opt.PerfLevel)

	under, over := 0, 0
	for _, p := range points {
		switch p.Zone {
		case "under-utilization":
			under++
		case "over-utilization":
			over++
		}
	}
	fmt.Printf("ruling zones: %d under-utilization, 1 optimal, %d over-utilization\n", under, over)
	fmt.Println("\navailable workloads:", ecldb.Workloads())
}
