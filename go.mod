module ecldb

go 1.22
