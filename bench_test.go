// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to end
// and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation. The experiments are deterministic;
// ns/op measures the wall cost of regenerating a figure, not a paper
// quantity. See EXPERIMENTS.md for paper-vs-measured values.
package ecldb_test

import (
	"testing"
	"time"

	"ecldb/internal/bench"
	"ecldb/internal/sim"
	"ecldb/internal/workload"
)

// skipInShort exempts the end-to-end simulation benchmarks from -short
// runs (scripts/bench.sh, CI): a single Table 1 sweep takes tens of
// minutes. The model-based hardware and profile figures stay in.
func skipInShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("full-simulation benchmark; skipped in -short mode")
	}
}

func BenchmarkFigure3PowerBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Figure3()
		b.ReportMetric(r.StaticFrac*100, "static/peak_%")
		b.ReportMetric(r.OverheadFrac*100, "overhead_%")
		b.ReportMetric(r.PeakPSUW, "peak_PSU_W")
	}
}

func BenchmarkFigure4ActivationCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Figure4()
		last := r.Combos[len(r.Combos)-1]
		b.ReportMetric(last.FirstCoreW, "first_core_W")
		b.ReportMetric(last.AddlCoreW, "addl_core_W")
		b.ReportMetric(last.SiblingW, "HT_sibling_W")
	}
}

func BenchmarkFigure5UncoreHalting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Figure5()
		b.ReportMetric(r.HaltedW[0], "halted_s0_W")
		b.ReportMetric(r.Socket1W[len(r.Socket1W)-1], "idle_unhalted_s1_W")
	}
}

func BenchmarkFigure6Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Figure6()
		var minCoreMaxUnc float64
		for _, c := range r.Cells {
			if c.CoreMHz == 1200 && c.UncoreMHz == 3000 {
				minCoreMaxUnc = c.BandwidthGBs
			}
		}
		b.ReportMetric(minCoreMaxUnc, "minclk_maxunc_GBs")
	}
}

func BenchmarkFigure7EET(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Figure7()
		b.ReportMetric(r.BalancedCompute.TurboAt.Seconds(), "balanced_turbo_s")
		b.ReportMetric(r.PerformanceCompute.TurboAt.Seconds(), "perf_turbo_s")
		b.ReportMetric(r.BalancedMemory.PerfGain(), "membound_perf_gain")
	}
}

func BenchmarkFigure8UFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Figure8()
		b.ReportMetric(r.Rows[0].PkgW-r.Rows[1].PkgW, "auto_vs_1.2GHz_W")
	}
}

func BenchmarkFigure9GeneratorGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.A.Configurations), "configs_default")
		b.ReportMetric(float64(r.B.Configurations), "configs_fcore7")
		b.ReportMetric(float64(r.C.Configurations), "configs_mixed")
	}
}

func BenchmarkFigure10WorkloadProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MemoryBound.MaxRTISavings*100, "membound_save_%")
		b.ReportMetric(r.Atomic.MaxRTISavings*100, "atomic_save_%")
		b.ReportMetric(r.Atomic.RespAdvantage*100, "atomic_resp_%")
		b.ReportMetric(r.HashTable.MaxRTISavings*100, "hashtable_save_%")
	}
}

func BenchmarkFigure11GuidingExample(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Times)), "samples")
	}
}

func BenchmarkFigure12MetaCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Figure12()
		b.ReportMetric(r.MeasureWindow.Seconds()*1000, "measure_window_ms")
		b.ReportMetric(r.ApplySettle.Seconds()*1000, "apply_settle_ms")
	}
}

// sequentially pins the sweep orchestrator to one worker for the
// duration of a benchmark, so the pre-existing figure benchmarks keep
// measuring the sequential baseline and the *Parallel variants below
// measure the orchestrated fan-out. Successive BENCH_*.json snapshots
// then carry both points of the sequential-vs-parallel trajectory.
func sequentially(b *testing.B) {
	b.Helper()
	bench.SetParallelism(1)
	b.Cleanup(func() { bench.SetParallelism(0) })
}

func BenchmarkFigure13Spike(b *testing.B) {
	skipInShort(b)
	sequentially(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Savings1Hz*100, "ecl_savings_%")
		b.ReportMetric(r.Baseline.OverloadSec, "baseline_overload_s")
		b.ReportMetric(r.ECL1Hz.OverloadSec, "ecl_overload_s")
	}
}

func BenchmarkFigure14Twitter(b *testing.B) {
	skipInShort(b)
	sequentially(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure14()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Savings1Hz*100, "ecl_savings_%")
		b.ReportMetric(r.ECL1Hz.ViolationFrac*100, "ecl1hz_viol_%")
		b.ReportMetric(r.ECL2Hz.ViolationFrac*100, "ecl2hz_viol_%")
	}
}

func BenchmarkFigure15And16Adaptation(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.FigureAdaptation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Static.PostSwitchEnergyJ, "static_J")
		b.ReportMetric(r.Online.PostSwitchEnergyJ, "online_J")
		b.ReportMetric(r.Multi.PostSwitchEnergyJ, "multiplexed_J")
		b.ReportMetric(r.Static.PostSwitchOverloadSec, "static_overload_s")
	}
}

func BenchmarkTable1EnergySavings(b *testing.B) {
	skipInShort(b)
	sequentially(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.LoadProfile == "twitter" {
				b.ReportMetric(row.Savings*100, row.Workload+"_save_%")
			}
		}
	}
}

// BenchmarkTable1Parallel regenerates Table 1 through the sweep
// orchestrator at the default pool size (GOMAXPROCS). Compare against
// BenchmarkTable1EnergySavings (pinned sequential) to read the fan-out
// speedup off a BENCH_*.json snapshot.
func BenchmarkTable1Parallel(b *testing.B) {
	skipInShort(b)
	bench.SetParallelism(0)
	for i := 0; i < b.N; i++ {
		r, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Rows)), "rows")
	}
}

// BenchmarkFigure13And14Parallel regenerates the spike/twitter pair with
// the orchestrator at the default pool size: the two figures fan out as
// jobs, and each figure's three governor runs fan out beneath them.
func BenchmarkFigure13And14Parallel(b *testing.B) {
	skipInShort(b)
	bench.SetParallelism(0)
	for i := 0; i < b.N; i++ {
		results, err := bench.Sweep([]bench.Job[bench.LoadAdaptResult]{
			bench.Figure13,
			bench.Figure14,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[0].Savings1Hz*100, "spike_save_%")
		b.ReportMetric(results[1].Savings1Hz*100, "twitter_save_%")
	}
}

// The profile-sweep pair runs in -short mode (model-based, no full
// simulation), so every BENCH_*.json snapshot records orchestrated sweep
// timing: the same four appendix profiles, pinned sequential versus the
// default pool.
func BenchmarkProfileSweepSequential(b *testing.B) {
	sequentially(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.AppendixProfiles(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileSweepParallel(b *testing.B) {
	bench.SetParallelism(0)
	for i := 0; i < b.N; i++ {
		if _, err := bench.AppendixProfiles(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendixProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AppendixProfiles()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.TATPIndexed.OptimalUncoreMHz), "tatp_idx_unc_MHz")
		b.ReportMetric(float64(r.SSBNonIndexed.OptimalUncoreMHz), "ssb_scan_unc_MHz")
	}
}

// BenchmarkTable1RowSingleRun times the harness itself on one Table 1
// cell (kv-indexed x twitter, 30 s profile) run strictly sequentially:
// a baseline run followed by an ECL run on one goroutine, capacity probe
// memoized and warmed before timing. This is the headline metric of the
// epoch-keyed step-kernel cache; the NoMemo variant below runs the same
// cell on the naive reference step path, so the pair reads the speedup
// directly off a BENCH_*.json snapshot. Both run in -short mode.
func BenchmarkTable1RowSingleRun(b *testing.B) { benchTable1Row(b, false) }

// BenchmarkTable1RowSingleRunNoMemo is the reference point: the same
// sequential Table 1 cell with the kernel cache and macro-stepping
// disabled (the eclsim -nomemo path). Results are byte-identical to the
// cached path — only the wall time differs.
func BenchmarkTable1RowSingleRunNoMemo(b *testing.B) { benchTable1Row(b, true) }

// BenchmarkTable1RowSingleRunAttr is the same cell with the energy
// attribution meter attached to the ECL run. The pair with the plain
// variant reads the meter's overhead directly off a BENCH_*.json
// snapshot; the attribution layer promises <2%.
func BenchmarkTable1RowSingleRunAttr(b *testing.B) {
	sequentially(b)
	if _, err := bench.MeasureCapacity(workload.ByName("kv-indexed"), 21); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := bench.Table1SingleRowAttr("kv-indexed", "twitter", 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Savings*100, "save_%")
	}
}

func benchTable1Row(b *testing.B, naive bool) {
	sequentially(b)
	if naive {
		sim.SetNaiveStep(true)
		b.Cleanup(func() { sim.SetNaiveStep(false) })
	}
	// Warm the memoized capacity probe so timing covers only the runs.
	if _, err := bench.MeasureCapacity(workload.ByName("kv-indexed"), 21); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := bench.Table1SingleRow("kv-indexed", "twitter", 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Savings*100, "save_%")
	}
}

// BenchmarkAblationElasticity quantifies design decision 5 (DESIGN.md):
// static worker binding versus the elastic hierarchical message layer.
// Run separately from the paper figures; see internal/bench ablation
// tests for the assertions.
func BenchmarkAblationElasticity(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationElasticity()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ElasticCompleted, "elastic_done_frac")
		b.ReportMetric(r.StaticCompleted, "static_done_frac")
	}
}

// BenchmarkAblationNUMA quantifies NUMA-aware query admission.
func BenchmarkAblationNUMA(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationNUMA()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.RandomComm), "random_transfers")
		b.ReportMetric(float64(r.NUMAComm), "numa_transfers")
	}
}

// BenchmarkAblationRTI quantifies the race-to-idle controller's
// contribution to the savings (design decision 4).
func BenchmarkAblationRTI(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationRTI()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.WithRTISavings*100, "with_rti_save_%")
		b.ReportMetric(r.WithoutRTISavings*100, "without_rti_save_%")
	}
}

// BenchmarkExtensionPowerCap sweeps RAPL-style per-socket power caps
// (enforced through the energy profile) and reports the power/latency
// trade-off at the tightest cap.
func BenchmarkExtensionPowerCap(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.PowerCap()
		if err != nil {
			b.Fatal(err)
		}
		uncapped := r.Points[0]
		tightest := r.Points[len(r.Points)-1]
		b.ReportMetric(uncapped.AvgRAPLW, "uncapped_W")
		b.ReportMetric(tightest.AvgRAPLW, "tightest_cap_W")
		b.ReportMetric(tightest.Violations*100, "tightest_viol_%")
	}
}

// BenchmarkAblationRTISync quantifies cross-socket race-to-idle phase
// alignment (design decision 4): aligned grids reach the deepest sleep
// state, staggered ones forfeit it.
func BenchmarkAblationRTISync(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationRTISync()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SyncedDeepSleepSec, "synced_deepsleep_s")
		b.ReportMetric(r.DesyncedDeepSleepSec, "desynced_deepsleep_s")
	}
}

// BenchmarkAblationQuantum verifies discretization insensitivity (design
// decision 1): the same experiment at half/default/double quantum.
func BenchmarkAblationQuantum(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationQuantum()
		if err != nil {
			b.Fatal(err)
		}
		for j, q := range r.Quanta {
			b.ReportMetric(r.EnergyJ[j], "J_at_"+q.String())
		}
	}
}
