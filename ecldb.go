// Package ecldb reproduces "Adaptive Energy-Control for In-Memory
// Database Systems" (Kissinger, Habich, Lehner — SIGMOD 2018) as a
// self-contained Go library.
//
// The paper integrates energy control into a data-oriented in-memory DBMS
// on a 2-socket NUMA server: per-socket Energy-Control Loops (ECL)
// maintain workload-dependent energy profiles over hardware
// configurations (active threads, per-core clocks, uncore clock), apply
// the most energy-efficient configuration for the current performance
// demand, race to idle in the under-utilization zone, and obey a
// user-defined query latency limit as a soft constraint through a
// system-level ECL.
//
// Because the original work is measurement-driven on specific hardware
// (Haswell-EP RAPL counters, MSR-controlled clocks), this reproduction
// runs the identical control architecture against a deterministic
// simulated machine whose power/performance response surface is
// calibrated to the paper's own Section 2 measurements. The DBMS layer —
// elastic partitioned storage, hierarchical message passing, the TATP/SSB
// and key-value benchmarks — is implemented for real; only time, power,
// and instruction throughput are simulated. See DESIGN.md for the
// substitution rationale and EXPERIMENTS.md for reproduced-vs-paper
// results.
//
// # Quick start
//
//	res, err := ecldb.Run(ecldb.RunConfig{
//	    Workload: "kv-nonindexed",
//	    Load:     ecldb.LoadSpec{Kind: "constant", Level: 0.5, Duration: time.Minute},
//	    Governor: ecldb.GovernorECL,
//	})
//
// compares against the race-to-idle baseline via GovernorBaseline. The
// figure/table regeneration harness lives in the cmd/ tools (hwbench,
// profilegen, eclsim, calibrate) and the root benchmarks.
package ecldb

import (
	"fmt"
	"io"
	"os"
	"time"

	"ecldb/internal/bench"
	"ecldb/internal/ecl"
	"ecldb/internal/energy"
	"ecldb/internal/hw"
	"ecldb/internal/loadprofile"
	"ecldb/internal/obs"
	"ecldb/internal/obs/trace"
	"ecldb/internal/sim"
	"ecldb/internal/units"
	"ecldb/internal/workload"
)

// Governor selects the energy policy of a run.
type Governor = sim.Governor

// Governor values.
const (
	// GovernorBaseline keeps all hardware threads on with CPU/OS
	// frequency control — the paper's comparison point.
	GovernorBaseline = sim.GovernorBaseline
	// GovernorECL runs the full Energy-Control Loop hierarchy.
	GovernorECL = sim.GovernorECL
)

// LoadSpec describes the offered load relative to the system's measured
// saturation capacity for the chosen workload.
type LoadSpec struct {
	// Kind is "constant", "spike", "twitter", or "sine".
	Kind string
	// Level scales the load: the constant level, the spike peak, or
	// the twitter base, as a fraction of capacity. Zero defaults to
	// sensible per-kind values (0.5 constant, 1.15 spike peak, 0.8
	// twitter base).
	Level float64
	// Duration is the length of the run.
	Duration time.Duration
}

// RunConfig configures an end-to-end run.
type RunConfig struct {
	// Workload names the benchmark: "kv-indexed", "kv-nonindexed",
	// "tatp-indexed", "tatp-nonindexed", "ssb-indexed",
	// "ssb-nonindexed", or one of the micro-workloads. See Workloads.
	Workload string
	// Load is the offered load profile.
	Load LoadSpec
	// Governor selects the energy policy (default GovernorBaseline).
	Governor Governor
	// LatencyLimit is the soft limit on average query latency
	// (default 100 ms, the paper's setting).
	LatencyLimit time.Duration
	// Interval is the ECL base interval (default 1 s).
	Interval time.Duration
	// Maintenance selects profile maintenance: "static", "online", or
	// "multiplexed" (default).
	Maintenance string
	// PowerCapW, when positive, caps each socket's package+DRAM power
	// (RAPL-power-limit style, but enforced through the energy profile:
	// the ECL only applies configurations measured at or below the cap,
	// even when that violates the latency limit). Only meaningful for
	// GovernorECL.
	PowerCapW float64
	// SwitchTo/SwitchAt optionally switch the workload mid-run
	// (the paper's Section 6.3 adaptation experiment).
	SwitchTo string
	SwitchAt time.Duration
	// ProfileCache optionally names a file for energy-profile
	// persistence: if it exists the profiles are restored from it
	// (skipping the pre-run measurement sweep); otherwise the measured
	// profiles are saved to it after the sweep. Only meaningful for
	// GovernorECL.
	ProfileCache string
	// Observe attaches the control-plane observability layer: the run
	// records every ECL decision event and fills Result.Explain and
	// Result.Events. Observation is read-only — attaching it never
	// changes a run's outcome.
	Observe bool
	// TraceQueries additionally samples per-query latency phase spans
	// (route/wake/queue/exec) and control-loop spans on the virtual
	// timeline, filling Result.PhaseBreakdown and Result.WriteQueryTrace.
	// Implies the observability layer. Like Observe, tracing is read-only
	// and never changes a run's outcome.
	TraceQueries bool
	// TraceSampleEvery sets the span sampling period: one query span per
	// N admissions, keyed deterministically on the admission index.
	// 0 defaults to 16; 1 traces every query.
	TraceSampleEvery int
	// Seed drives all randomness; runs are fully deterministic.
	Seed int64
}

// Result summarizes a run.
type Result struct {
	// EnergyJ is the total RAPL-visible energy (package + DRAM, both
	// sockets).
	EnergyJ float64
	// PSUEnergyJ is the wall energy including conversion overheads.
	PSUEnergyJ float64
	// CapacityQps is the measured saturation throughput the load was
	// scaled against.
	CapacityQps float64
	// Completed and Submitted count queries.
	Completed, Submitted int64
	// AvgLatency and P99Latency summarize query latencies.
	AvgLatency, P99Latency time.Duration
	// ViolationFrac is the fraction of queries over the latency limit.
	ViolationFrac float64
	// MostApplied is the hardware configuration the ECL applied
	// longest (empty for baseline runs).
	MostApplied string
	// Series exposes the recorded traces: "load_qps", "power_rapl_w",
	// "power_psu_w", "latency_avg_ms", "latency_p99_ms",
	// "active_threads".
	Series func(name string) (times []time.Duration, values []float64)
	// Explain is the post-run control-plane report (zone residency,
	// safety-valve activations, applied configurations). Empty unless
	// RunConfig.Observe was set.
	Explain string
	// Events counts recorded decision events by type name (e.g.
	// "ZoneTransition", "ConfigApply"). Nil unless RunConfig.Observe
	// was set.
	Events map[string]int64
	// PhaseBreakdown is the per-phase latency attribution table over the
	// sampled query spans, with the critical-path summary. Empty unless
	// RunConfig.TraceQueries was set.
	PhaseBreakdown string
	// WriteQueryTrace writes the sampled spans as Chrome/Perfetto
	// trace-event JSON (open at ui.perfetto.dev). Nil unless
	// RunConfig.TraceQueries was set.
	WriteQueryTrace func(w io.Writer) error
}

// Workloads lists the available benchmark workload names.
func Workloads() []string {
	var out []string
	for _, w := range append(workload.All(), workload.Micros()...) {
		out = append(out, w.Name())
	}
	return out
}

// Capacity measures the saturation throughput (queries/s) of a workload
// under the baseline governor. Measurements are memoized per
// (workload, seed) for the life of the process (see bench.MeasureCapacity).
func Capacity(workloadName string, seed int64) (float64, error) {
	wl := workload.ByName(workloadName)
	if wl == nil {
		return 0, fmt.Errorf("ecldb: unknown workload %q", workloadName)
	}
	return bench.MeasureCapacity(wl, seed)
}

// Run executes one end-to-end experiment.
func Run(cfg RunConfig) (*Result, error) {
	wl := workload.ByName(cfg.Workload)
	if wl == nil {
		return nil, fmt.Errorf("ecldb: unknown workload %q", cfg.Workload)
	}
	if cfg.Load.Duration <= 0 {
		return nil, fmt.Errorf("ecldb: load duration required")
	}
	capacity, err := bench.MeasureCapacity(wl, cfg.Seed)
	if err != nil {
		return nil, err
	}
	load, err := buildLoad(cfg.Load, capacity)
	if err != nil {
		return nil, err
	}
	opts := sim.Options{
		Workload: workload.ByName(cfg.Workload), // fresh instance
		Load:     load,
		Governor: cfg.Governor,
		// Prewarm is handled explicitly below so the profile cache can
		// substitute for the measurement sweep.
		SwitchAt: cfg.SwitchAt,
		Seed:     cfg.Seed,
	}
	if cfg.SwitchTo != "" {
		sw := workload.ByName(cfg.SwitchTo)
		if sw == nil {
			return nil, fmt.Errorf("ecldb: unknown switch workload %q", cfg.SwitchTo)
		}
		opts.SwitchTo = sw
		if opts.SwitchAt <= 0 {
			opts.SwitchAt = cfg.Load.Duration / 3
		}
	}
	if cfg.Governor == GovernorECL {
		opts.ECL = ecl.DefaultOptions()
		if cfg.LatencyLimit > 0 {
			opts.ECL.LatencyLimit = cfg.LatencyLimit
		}
		if cfg.Interval > 0 {
			opts.ECL.Interval = cfg.Interval
		}
		if cfg.PowerCapW > 0 {
			opts.ECL.PowerCapW = units.WattsOf(cfg.PowerCapW)
		}
		switch cfg.Maintenance {
		case "", "multiplexed":
			opts.ECL.Maintenance = ecl.MaintainMultiplexed
		case "online":
			opts.ECL.Maintenance = ecl.MaintainOnline
		case "static":
			opts.ECL.Maintenance = ecl.MaintainNone
		default:
			return nil, fmt.Errorf("ecldb: unknown maintenance %q", cfg.Maintenance)
		}
	}
	var observer *obs.Observer
	if cfg.Observe || cfg.TraceQueries {
		observer = obs.New(0)
		if cfg.TraceQueries {
			every := cfg.TraceSampleEvery
			if every == 0 {
				every = 16
			}
			observer.Trace = trace.New(every)
		}
		opts.Obs = observer
	}
	simulator, err := sim.New(opts)
	if err != nil {
		return nil, err
	}
	if cfg.Governor == GovernorECL {
		if err := establishProfiles(simulator, cfg.ProfileCache); err != nil {
			return nil, err
		}
	}
	res, err := simulator.Run()
	if err != nil {
		return nil, err
	}
	out := &Result{
		EnergyJ:       res.EnergyJ.Joules(),
		PSUEnergyJ:    res.PSUEnergyJ.Joules(),
		CapacityQps:   capacity,
		Completed:     res.Completed,
		Submitted:     res.Submitted,
		AvgLatency:    res.AvgLatency,
		P99Latency:    res.P99Latency,
		ViolationFrac: res.ViolationFrac,
		MostApplied:   res.MostApplied,
		Series: func(name string) ([]time.Duration, []float64) {
			s := res.Rec.Series(name)
			return s.Times, s.Values
		},
	}
	if observer != nil {
		out.Explain = observer.Explain()
		out.Events = make(map[string]int64, len(obs.Types()))
		for _, typ := range obs.Types() {
			if n := observer.Log.Count(typ); n > 0 {
				out.Events[typ.String()] = int64(n)
			}
		}
		if tr := observer.Trace; tr != nil {
			out.PhaseBreakdown = tr.Report()
			out.WriteQueryTrace = tr.WritePerfetto
		}
	}
	return out, nil
}

// ProfilePoint is one hardware configuration of a workload's energy
// profile (Section 4 of the paper), with performance and efficiency
// normalized to the profile's peaks.
type ProfilePoint struct {
	// Config is the human-readable configuration.
	Config string
	// Threads is the number of active hardware threads.
	Threads int
	// AvgCoreMHz and UncoreMHz are the configuration's clocks.
	AvgCoreMHz, UncoreMHz int
	// PerfLevel is the performance score normalized to the peak score.
	PerfLevel float64
	// EffLevel is the energy efficiency normalized to the optimum.
	EffLevel float64
	// OnSkyline marks the profile's upper efficiency envelope.
	OnSkyline bool
	// Zone is "under-utilization", "optimal", or "over-utilization".
	Zone string
}

// Profile computes a workload's energy profile from the calibrated
// machine model using the paper's default configuration generator
// (fcore=4, funcore=3, cmax=256 — 145 configurations). At runtime the ECL
// measures the same profile through RAPL instead.
func Profile(workloadName string) ([]ProfilePoint, error) {
	wl := workload.ByName(workloadName)
	if wl == nil {
		return nil, fmt.Errorf("ecldb: unknown workload %q", workloadName)
	}
	topo := hw.HaswellEP()
	cfgs, err := energy.Generate(topo, energy.DefaultGeneratorParams())
	if err != nil {
		return nil, err
	}
	p := energy.NewProfile(topo, cfgs)
	if err := energy.EvaluateModel(p, topo, hw.DefaultPowerParams(), wl.Characteristics(), 0); err != nil {
		return nil, err
	}
	onSky := map[*energy.Entry]bool{}
	for _, e := range p.Skyline() {
		onSky[e] = true
	}
	maxScore := p.MaxScore()
	maxEff := p.MostEfficient().Efficiency()
	var out []ProfilePoint
	for _, e := range p.Entries() {
		if e.Config.Idle() {
			continue
		}
		out = append(out, ProfilePoint{
			Config:     e.Config.String(),
			Threads:    e.Config.ActiveThreads(),
			AvgCoreMHz: int(e.Config.AvgCoreMHz(topo.ThreadsPerCore)),
			UncoreMHz:  e.Config.UncoreMHz,
			PerfLevel:  e.Score.Div(maxScore),
			EffLevel:   e.Efficiency() / maxEff,
			OnSkyline:  onSky[e],
			Zone:       p.ZoneOf(e).String(),
		})
	}
	return out, nil
}

// establishProfiles restores profiles from the cache file when present,
// or runs the pre-run measurement sweep (saving to the cache afterwards
// when a path is given).
func establishProfiles(s *sim.Sim, cachePath string) error {
	if cachePath != "" {
		if f, err := os.Open(cachePath); err == nil {
			defer f.Close()
			return s.LoadProfiles(f)
		}
	}
	s.Prewarm()
	if cachePath == "" {
		return nil
	}
	f, err := os.Create(cachePath)
	if err != nil {
		return fmt.Errorf("ecldb: writing profile cache: %w", err)
	}
	if err := s.SaveProfiles(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// buildLoad materializes a LoadSpec against the measured capacity.
func buildLoad(spec LoadSpec, capacity float64) (loadprofile.Profile, error) {
	level := spec.Level
	switch spec.Kind {
	case "constant", "":
		if level == 0 {
			level = 0.5
		}
		return loadprofile.Constant{Qps: capacity * level, Len: spec.Duration}, nil
	case "spike":
		if level == 0 {
			level = 1.15
		}
		return loadprofile.Spike{PeakQps: capacity * level, Len: spec.Duration}, nil
	case "twitter":
		if level == 0 {
			level = 0.8
		}
		return loadprofile.Twitter{BaseQps: capacity * level, Len: spec.Duration}, nil
	case "sine":
		if level == 0 {
			level = 0.5
		}
		return loadprofile.Sine{MeanQps: capacity * level, Amp: 0.5,
			Period: 30 * time.Second, Len: spec.Duration}, nil
	}
	return nil, fmt.Errorf("ecldb: unknown load kind %q", spec.Kind)
}
